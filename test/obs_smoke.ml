(* @obs-smoke: end-to-end check of the observability sink format, wired
   into `dune runtest`. Runs a tiny instrumented workload with tracing
   enabled, writes a Chrome trace, and validates it with the sink's own
   format checker — a regression in the trace serializer fails tier-1. *)

let () =
  Obs.Sink.enable ();
  let rng = Workloads.Rng.create 42 in
  let t = Workloads.Gen.uniform rng ~n:8 ~m:3 ~k:3 () in
  (* exercises B&B (exact), the dual-approximation binary search and the
     simplex (lp_um), so all three layers contribute events/counters *)
  let outcome = Algos.Exact.solve t in
  if not outcome.Algos.Exact.optimal then begin
    prerr_endline "obs-smoke: tiny exact solve should prove optimality";
    exit 1
  end;
  ignore (Algos.Lp_um.lower_bound t);
  if Obs.Counter.value (Obs.Counter.make "lp.simplex.solves") = 0 then begin
    prerr_endline "obs-smoke: simplex counters did not move";
    exit 1
  end;
  if Obs.Counter.value (Obs.Counter.make "algos.exact.nodes") = 0 then begin
    prerr_endline "obs-smoke: exact counters did not move";
    exit 1
  end;
  let file = Filename.temp_file "obs_smoke" ".json" in
  Obs.Trace.to_file file;
  match Obs.Trace.validate_file file with
  | Ok n when n > 0 ->
      Sys.remove file;
      Printf.printf "obs-smoke ok: %d trace events, %d simplex solves, %d B&B nodes\n"
        n
        (Obs.Counter.value (Obs.Counter.make "lp.simplex.solves"))
        (Obs.Counter.value (Obs.Counter.make "algos.exact.nodes"))
  | Ok _ ->
      Printf.eprintf "obs-smoke: trace is empty (%s)\n" file;
      exit 1
  | Error msg ->
      Printf.eprintf "obs-smoke: invalid trace (%s): %s\n" file msg;
      exit 1
