(* Tests for the algorithms library: every algorithm of the paper plus the
   exact solver, validated against brute force / each other / the proven
   approximation factors. *)

module I = Core.Instance
module S = Core.Schedule

let check_float tol = Alcotest.(check (float tol))

(* Brute-force optimum by enumerating all m^n assignments (tiny only). *)
let brute_force instance =
  let n = I.num_jobs instance in
  let m = I.num_machines instance in
  let best = ref infinity in
  let assignment = Array.make n 0 in
  let rec go j =
    if j = n then begin
      if
        Array.for_all Fun.id
          (Array.mapi (fun j' i -> I.job_eligible instance i j') assignment)
      then begin
        let ms = S.makespan (S.make instance assignment) in
        if ms < !best then best := ms
      end
    end
    else
      for i = 0 to m - 1 do
        assignment.(j) <- i;
        go (j + 1)
      done
  in
  go 0;
  !best

let uniform_fixture () =
  I.uniform ~speeds:[| 1.0; 2.0 |]
    ~sizes:[| 4.0; 2.0; 6.0; 2.0 |]
    ~job_class:[| 0; 0; 1; 1 |]
    ~setups:[| 3.0; 1.0 |]

(* --- List scheduling ---------------------------------------------------- *)

let test_list_scheduling_valid () =
  let t = uniform_fixture () in
  List.iter
    (fun order ->
      let r = Algos.List_scheduling.schedule ~order t in
      Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
      Alcotest.(check bool) "makespan consistent" true
        (Float.abs (r.Algos.Common.makespan -. S.makespan r.Algos.Common.schedule)
        < 1e-9))
    [
      Algos.List_scheduling.Input;
      Algos.List_scheduling.Longest_first;
      Algos.List_scheduling.By_class;
    ]

let test_list_scheduling_respects_eligibility () =
  let t =
    I.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 3.0; 5.0 |] ~job_class:[| 0; 1 |] ~setups:[| 1.0; 1.0 |]
  in
  let r = Algos.List_scheduling.schedule t in
  Alcotest.(check int) "job 0 on machine 0" 0
    (S.machine_of r.Algos.Common.schedule 0);
  Alcotest.(check int) "job 1 on machine 1" 1
    (S.machine_of r.Algos.Common.schedule 1)

let test_list_scheduling_within_naive_bound () =
  (* greedy never exceeds the naive per-job upper bound *)
  let rng = Workloads.Rng.create 101 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.uniform rng ~n:8 ~m:3 ~k:3 () in
    let r = Algos.List_scheduling.schedule t in
    Alcotest.(check bool) "within naive bound" true
      (r.Algos.Common.makespan <= Core.Bounds.naive_upper_bound t +. 1e-9);
    Alcotest.(check bool) "at least the lower bound" true
      (r.Algos.Common.makespan >= Core.Bounds.lower_bound t -. 1e-9)
  done

(* --- Exact --------------------------------------------------------------- *)

let test_exact_matches_brute_force () =
  let rng = Workloads.Rng.create 42 in
  for trial = 1 to 12 do
    let n = 3 + Workloads.Rng.int rng 4 in
    let m = 2 + Workloads.Rng.int rng 2 in
    let k = 1 + Workloads.Rng.int rng 2 in
    let t =
      if trial mod 2 = 0 then Workloads.Gen.uniform rng ~n ~m ~k ()
      else Workloads.Gen.unrelated rng ~n ~m ~k ()
    in
    let outcome = Algos.Exact.solve t in
    Alcotest.(check bool) "optimal proven" true outcome.Algos.Exact.optimal;
    check_float 1e-6
      (Printf.sprintf "trial %d matches brute force" trial)
      (brute_force t)
      outcome.Algos.Exact.result.Algos.Common.makespan
  done

let test_exact_single_machine () =
  let t =
    I.identical ~num_machines:1 ~sizes:[| 5.0; 5.0 |] ~job_class:[| 0; 1 |]
      ~setups:[| 2.0; 3.0 |]
  in
  check_float 1e-9 "sum plus setups" 15.0 (Algos.Exact.makespan t)

let test_exact_beats_greedy_or_ties () =
  let rng = Workloads.Rng.create 7 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.uniform rng ~n:7 ~m:3 ~k:3 () in
    let greedy = Algos.List_scheduling.schedule t in
    let exact = Algos.Exact.solve t in
    Alcotest.(check bool) "exact <= greedy" true
      (exact.Algos.Exact.result.Algos.Common.makespan
      <= greedy.Algos.Common.makespan +. 1e-9)
  done

let test_exact_respects_node_limit () =
  let rng = Workloads.Rng.create 3 in
  let t = Workloads.Gen.uniform rng ~n:12 ~m:4 ~k:3 () in
  let outcome = Algos.Exact.solve ~node_limit:10 t in
  Alcotest.(check bool) "not proven optimal" false outcome.Algos.Exact.optimal;
  Alcotest.(check bool) "still returns valid schedule" true
    (S.is_valid t outcome.Algos.Exact.result.Algos.Common.schedule)

let test_exact_parallel_pool_reuse () =
  let pool = Parallel.Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let rng = Workloads.Rng.create 113 in
      for _ = 1 to 5 do
        let t = Workloads.Gen.unrelated rng ~n:7 ~m:3 ~k:2 () in
        let par = Algos.Exact_parallel.solve ~pool t in
        Alcotest.(check bool) "optimal" true par.Algos.Exact_parallel.optimal;
        check_float 1e-9 "same as sequential" (Algos.Exact.makespan t)
          par.Algos.Exact_parallel.result.Algos.Common.makespan;
        Alcotest.(check bool) "subtrees = eligible machines of job 0" true
          (par.Algos.Exact_parallel.subtrees >= 1)
      done)

let test_exact_parallel_identical_symmetry () =
  let rng = Workloads.Rng.create 127 in
  let t = Workloads.Gen.identical rng ~n:8 ~m:4 ~k:2 () in
  let par = Algos.Exact_parallel.solve t in
  (* identical machines split on the second job: exactly two subtrees *)
  Alcotest.(check int) "two symmetric subtrees" 2
    par.Algos.Exact_parallel.subtrees;
  check_float 1e-9 "optimum preserved" (Algos.Exact.makespan t)
    par.Algos.Exact_parallel.result.Algos.Common.makespan

(* --- LPT (Lemma 2.1) ----------------------------------------------------- *)

let test_lpt_factor_on_fixture () =
  let t = uniform_fixture () in
  let r = Algos.Lpt.schedule t in
  let opt = Algos.Exact.makespan t in
  Alcotest.(check bool) "within 4.74 of optimum" true
    (r.Algos.Common.makespan <= Algos.Lpt.approximation_factor *. opt +. 1e-9)

let test_lpt_factor_random () =
  let rng = Workloads.Rng.create 11 in
  for _ = 1 to 15 do
    let n = 4 + Workloads.Rng.int rng 5 in
    let m = 2 + Workloads.Rng.int rng 2 in
    let k = 1 + Workloads.Rng.int rng 3 in
    let t = Workloads.Gen.uniform rng ~n ~m ~k ~setup_range:(1.0, 80.0) () in
    let r = Algos.Lpt.schedule t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    let opt = Algos.Exact.makespan t in
    Alcotest.(check bool) "Lemma 2.1 factor" true
      (r.Algos.Common.makespan
      <= Algos.Lpt.approximation_factor *. opt +. 1e-6)
  done

let test_lpt_small_jobs_bundled () =
  (* 6 tiny jobs of one class, setup dominates: placeholders force them to
     share machines instead of paying 6 setups *)
  let t =
    I.identical ~num_machines:3
      ~sizes:[| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
      ~job_class:[| 0; 0; 0; 0; 0; 0 |]
      ~setups:[| 10.0 |]
  in
  let r = Algos.Lpt.schedule t in
  (* one placeholder of size 10 -> all jobs on one machine: 6 + 10 = 16 *)
  check_float 1e-9 "bundled" 16.0 r.Algos.Common.makespan

let test_lpt_rejects_unrelated () =
  let t =
    I.unrelated ~p:[| [| 1.0 |] |] ~job_class:[| 0 |] ~setups:[| 1.0 |] ()
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Lpt.schedule t);
       false
     with Invalid_argument _ -> true)

let test_setup_oblivious_degrades () =
  (* three classes of many tiny jobs: oblivious LPT balances pure sizes and
     scatters every class over every machine, paying 3 setups per machine;
     the placeholder transformation keeps classes together *)
  let t =
    I.identical ~num_machines:3
      ~sizes:(Array.make 30 1.0)
      ~job_class:(Array.init 30 (fun j -> j / 10))
      ~setups:[| 10.0; 10.0; 10.0 |]
  in
  let oblivious = Algos.Lpt.setup_oblivious t in
  let aware = Algos.Lpt.schedule t in
  Alcotest.(check bool) "aware beats oblivious" true
    (aware.Algos.Common.makespan < oblivious.Algos.Common.makespan)

let test_batch_lpt_valid_and_one_setup_per_class () =
  let rng = Workloads.Rng.create 71 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.uniform rng ~n:10 ~m:3 ~k:4 () in
    let r = Algos.Batch_lpt.schedule t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    (* wholesale batching pays exactly one setup per nonempty class *)
    Alcotest.(check int) "one setup per class" (I.num_classes t)
      (S.num_setups r.Algos.Common.schedule)
  done

let test_batch_lpt_loses_on_dominant_class () =
  (* one huge class: batching puts it on one machine; placeholder LPT
     splits it at setup granularity *)
  let t =
    I.identical ~num_machines:4
      ~sizes:(Array.make 16 5.0)
      ~job_class:(Array.make 16 0)
      ~setups:[| 2.0 |]
  in
  let batch = Algos.Batch_lpt.schedule t in
  let lpt = Algos.Lpt.schedule t in
  Alcotest.(check bool) "placeholders beat wholesale batching" true
    (lpt.Algos.Common.makespan < batch.Algos.Common.makespan)

let test_batch_lpt_rejects_unrelated () =
  let t =
    I.unrelated ~p:[| [| 1.0 |] |] ~job_class:[| 0 |] ~setups:[| 1.0 |] ()
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Batch_lpt.schedule t);
       false
     with Invalid_argument _ -> true)

(* --- LP relaxation of ILP-UM --------------------------------------------- *)

let test_lp_um_sandwich () =
  let rng = Workloads.Rng.create 19 in
  for _ = 1 to 8 do
    let t = Workloads.Gen.unrelated rng ~n:6 ~m:3 ~k:2 () in
    let opt = Algos.Exact.makespan t in
    let bound = Algos.Lp_um.lower_bound t in
    Alcotest.(check bool) "lower <= OPT" true
      (bound.Algos.Lp_um.lower <= opt +. 1e-6);
    Alcotest.(check bool) "feasible guess >= lower" true
      (bound.Algos.Lp_um.solution.Algos.Lp_um.makespan
      >= bound.Algos.Lp_um.lower -. 1e-6)
  done

let test_lp_um_solution_constraints () =
  let rng = Workloads.Rng.create 23 in
  let t = Workloads.Gen.unrelated rng ~n:8 ~m:3 ~k:3 () in
  let bound = Algos.Lp_um.lower_bound t in
  let sol = bound.Algos.Lp_um.solution in
  let tt = sol.Algos.Lp_um.makespan in
  let n = I.num_jobs t and m = I.num_machines t and kk = I.num_classes t in
  (* (2): assignments sum to one *)
  for j = 0 to n - 1 do
    let sum = ref 0.0 in
    for i = 0 to m - 1 do
      sum := !sum +. sol.Algos.Lp_um.x.(i).(j)
    done;
    check_float 1e-5 (Printf.sprintf "job %d assigned" j) 1.0 !sum
  done;
  (* (1): loads within T; (4): y >= x *)
  for i = 0 to m - 1 do
    let load = ref 0.0 in
    for j = 0 to n - 1 do
      load := !load +. (sol.Algos.Lp_um.x.(i).(j) *. I.ptime t i j);
      Alcotest.(check bool) "y dominates x" true
        (sol.Algos.Lp_um.y.(i).(t.I.job_class.(j))
        >= sol.Algos.Lp_um.x.(i).(j) -. 1e-6)
    done;
    for k = 0 to kk - 1 do
      if sol.Algos.Lp_um.y.(i).(k) > 0.0 then
        load := !load +. (sol.Algos.Lp_um.y.(i).(k) *. I.setup_time t i k)
    done;
    Alcotest.(check bool) (Printf.sprintf "machine %d load" i) true
      (!load <= tt +. 1e-5)
  done

let test_lp_um_infeasible_below_bound () =
  let t = uniform_fixture () in
  let opt = Algos.Exact.makespan t in
  Alcotest.(check bool) "infeasible well below OPT" true
    (Algos.Lp_um.feasible t ~makespan:(opt /. 10.0) = None)

(* --- Randomized rounding -------------------------------------------------- *)

let test_rounding_valid_and_bounded () =
  let rng = Workloads.Rng.create 31 in
  for _ = 1 to 5 do
    let t = Workloads.Gen.unrelated rng ~n:10 ~m:3 ~k:3 () in
    let r, stats = Algos.Randomized_rounding.schedule rng t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    let n = float_of_int (I.num_jobs t) and m = float_of_int (I.num_machines t) in
    (* Theorem 3.3 bound with a generous constant *)
    let bound = 8.0 *. stats.Algos.Randomized_rounding.lp_makespan *. (log n +. log m +. 1.0) in
    Alcotest.(check bool) "O(T(log n + log m))" true
      (r.Algos.Common.makespan <= bound)
  done

let test_rounding_deterministic_given_seed () =
  let t = Workloads.Gen.unrelated (Workloads.Rng.create 5) ~n:8 ~m:3 ~k:2 () in
  let r1, _ = Algos.Randomized_rounding.schedule (Workloads.Rng.create 99) t in
  let r2, _ = Algos.Randomized_rounding.schedule (Workloads.Rng.create 99) t in
  check_float 1e-12 "same seed, same result" r1.Algos.Common.makespan
    r2.Algos.Common.makespan

let test_rounding_stats () =
  let t = Workloads.Gen.unrelated (Workloads.Rng.create 5) ~n:8 ~m:3 ~k:2 () in
  let _, stats = Algos.Randomized_rounding.schedule (Workloads.Rng.create 1) t in
  Alcotest.(check bool) "iterations = ceil(3 ln 8)" true
    (stats.Algos.Randomized_rounding.iterations = 7);
  Alcotest.(check bool) "lp probes counted" true
    (stats.Algos.Randomized_rounding.lp_probes > 0)

(* --- 2-approx: restricted assignment, class-uniform restrictions ---------- *)

let test_ra_class_uniform_guarantee () =
  let rng = Workloads.Rng.create 37 in
  for _ = 1 to 8 do
    let n = 5 + Workloads.Rng.int rng 4 in
    let m = 2 + Workloads.Rng.int rng 2 in
    let k = 1 + Workloads.Rng.int rng 3 in
    let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
    let r = Algos.Ra_class_uniform.schedule t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    let opt = Algos.Exact.makespan t in
    Alcotest.(check bool) "Theorem 3.10 factor" true
      (r.Algos.Common.makespan <= 2.0 *. 1.03 *. opt +. 1e-6)
  done

let test_ra_class_uniform_probe_semantics () =
  let rng = Workloads.Rng.create 41 in
  let t = Workloads.Gen.restricted_class_uniform rng ~n:7 ~m:3 ~k:2 () in
  let opt = Algos.Exact.makespan t in
  (match Algos.Ra_class_uniform.schedule_for_guess t ~makespan:opt with
  | None -> Alcotest.fail "probe at OPT must be feasible"
  | Some r ->
      Alcotest.(check bool) "probe result <= 2*guess" true
        (r.Algos.Common.makespan <= (2.0 *. opt) +. 1e-6));
  Alcotest.(check bool) "far below OPT infeasible" true
    (Algos.Ra_class_uniform.schedule_for_guess t ~makespan:(opt /. 20.0) = None)

let test_ra_class_uniform_rejects_nonuniform () =
  let t =
    I.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 0 |] ~setups:[| 1.0 |]
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Ra_class_uniform.schedule t);
       false
     with Invalid_argument _ -> true)

(* --- 3-approx: class-uniform processing times ----------------------------- *)

let test_um_class_uniform_guarantee () =
  let rng = Workloads.Rng.create 43 in
  for _ = 1 to 8 do
    let n = 5 + Workloads.Rng.int rng 4 in
    let m = 2 + Workloads.Rng.int rng 2 in
    let k = 1 + Workloads.Rng.int rng 3 in
    let t = Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k () in
    let r = Algos.Um_class_uniform.schedule t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    let opt = Algos.Exact.makespan t in
    Alcotest.(check bool) "Theorem 3.11 factor" true
      (r.Algos.Common.makespan <= 3.0 *. 1.03 *. opt +. 1e-6)
  done

let test_um_class_uniform_rejects_general () =
  let t =
    I.unrelated
      ~p:[| [| 1.0; 5.0 |]; [| 2.0; 1.0 |] |]
      ~job_class:[| 0; 0 |] ~setups:[| 1.0 |]
      ()
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Um_class_uniform.schedule t);
       false
     with Invalid_argument _ -> true)

(* --- Exact via ILP-UM ------------------------------------------------------ *)

let test_exact_ilp_matches_bnb () =
  let rng = Workloads.Rng.create 73 in
  for trial = 1 to 8 do
    let n = 4 + Workloads.Rng.int rng 4 in
    let m = 2 + Workloads.Rng.int rng 2 in
    let k = 1 + Workloads.Rng.int rng 2 in
    let t =
      if trial mod 2 = 0 then Workloads.Gen.uniform rng ~n ~m ~k ()
      else Workloads.Gen.unrelated rng ~n ~m ~k ()
    in
    let ilp = Algos.Exact_ilp.solve t in
    (* generators draw integral times only when sizes are integral; the
       uniform env divides by speeds, so compare against B&B rather than
       requiring exactness flags *)
    let bnb = Algos.Exact.makespan t in
    if ilp.Algos.Exact_ilp.optimal then
      check_float 1e-6
        (Printf.sprintf "trial %d agrees with B&B" trial)
        bnb ilp.Algos.Exact_ilp.result.Algos.Common.makespan
    else
      Alcotest.(check bool) "at least a valid upper bound" true
        (ilp.Algos.Exact_ilp.result.Algos.Common.makespan >= bnb -. 1e-6)
  done

let test_exact_ilp_feasible_probe () =
  let rng = Workloads.Rng.create 79 in
  let t = Workloads.Gen.unrelated rng ~n:6 ~m:3 ~k:2 () in
  let opt = Algos.Exact.makespan t in
  (match Algos.Exact_ilp.feasible t ~makespan:opt with
  | None -> Alcotest.fail "feasible at OPT"
  | Some r ->
      Alcotest.(check bool) "within bound" true
        (r.Algos.Common.makespan <= opt +. 1e-6));
  Alcotest.(check bool) "infeasible below" true
    (Algos.Exact_ilp.feasible t ~makespan:(opt -. 1.0) = None)

(* --- Local search ------------------------------------------------------------ *)

let test_local_search_never_worse () =
  let rng = Workloads.Rng.create 107 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.uniform rng ~n:10 ~m:3 ~k:3 () in
    let start = Algos.List_scheduling.schedule ~order:Algos.List_scheduling.Input t in
    let polished = Algos.Local_search.improve t start.Algos.Common.schedule in
    Alcotest.(check bool) "valid" true
      (S.is_valid t polished.Algos.Local_search.result.Algos.Common.schedule);
    Alcotest.(check bool) "never worse" true
      (polished.Algos.Local_search.result.Algos.Common.makespan
      <= start.Algos.Common.makespan +. 1e-9);
    Alcotest.(check bool) "never beats OPT" true
      (polished.Algos.Local_search.result.Algos.Common.makespan
      >= Algos.Exact.makespan t -. 1e-9)
  done

let test_local_search_fixes_obvious () =
  (* all jobs dumped on machine 0: local search must spread them *)
  let t =
    I.identical ~num_machines:3
      ~sizes:[| 5.0; 5.0; 5.0 |]
      ~job_class:[| 0; 1; 2 |]
      ~setups:[| 1.0; 1.0; 1.0 |]
  in
  let start = Core.Schedule.make t [| 0; 0; 0 |] in
  let polished = Algos.Local_search.improve t start in
  check_float 1e-9 "one job per machine" 6.0
    polished.Algos.Local_search.result.Algos.Common.makespan;
  Alcotest.(check bool) "made moves" true (polished.Algos.Local_search.moves >= 2)

let test_local_search_swap_needed () =
  (* machines at 9 vs 5 where only an exchange (4<->2) helps: moving either
     job alone does not reduce the makespan, swapping does *)
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 5.0; 4.0; 3.0; 2.0 |]
      ~job_class:[| 0; 0; 0; 0 |]
      ~setups:[| 0.0 |]
  in
  let start = Core.Schedule.make t [| 0; 0; 1; 1 |] in
  let polished = Algos.Local_search.improve t start in
  check_float 1e-9 "balanced" 7.0
    polished.Algos.Local_search.result.Algos.Common.makespan

let test_local_search_respects_eligibility () =
  let t =
    I.restricted
      ~eligible:[| [| true; true |]; [| false; true |] |]
      ~sizes:[| 8.0; 1.0 |] ~job_class:[| 0; 1 |] ~setups:[| 1.0; 1.0 |]
  in
  let start = Core.Schedule.make t [| 0; 0 |] in
  let polished = Algos.Local_search.improve t start in
  Alcotest.(check bool) "valid" true
    (S.is_valid t polished.Algos.Local_search.result.Algos.Common.schedule);
  (* job 0 cannot leave machine 0 *)
  Alcotest.(check int) "job 0 stays" 0
    (S.machine_of polished.Algos.Local_search.result.Algos.Common.schedule 0)

let test_local_search_max_steps () =
  let rng = Workloads.Rng.create 109 in
  let t = Workloads.Gen.uniform rng ~n:12 ~m:3 ~k:3 () in
  let start = Algos.List_scheduling.schedule ~order:Algos.List_scheduling.Input t in
  let limited = Algos.Local_search.improve ~max_steps:1 t start.Algos.Common.schedule in
  Alcotest.(check bool) "at most one improvement applied" true
    (limited.Algos.Local_search.moves + limited.Algos.Local_search.swaps <= 1)

(* --- Incremental repair ------------------------------------------------------ *)

let test_incremental_add_repair () =
  let rng = Workloads.Rng.create 211 in
  for round = 1 to 8 do
    let t = Workloads.Gen.uniform rng ~n:12 ~m:3 ~k:3 () in
    let base =
      Algos.List_scheduling.schedule ~order:Algos.List_scheduling.By_class t
    in
    let t' =
      I.append_jobs t
        [
          {
            I.nsize = float_of_int round;
            nclass = round mod 3;
            nptimes = None;
            neligible = None;
          };
        ]
    in
    let seed =
      Array.append (S.assignment base.Algos.Common.schedule) [| -1 |]
    in
    let rep = Algos.Incremental.repair t' ~seed in
    Alcotest.(check bool) "valid" true
      (S.is_valid t' rep.Algos.Incremental.result.Algos.Common.schedule);
    Alcotest.(check int) "one job placed" 1 rep.Algos.Incremental.placed;
    Alcotest.(check bool) "above certified LB" true
      (rep.Algos.Incremental.result.Algos.Common.makespan
      >= Core.Bounds.lower_bound t' -. 1e-9);
    check_float 1e-9 "makespan consistent"
      (S.makespan rep.Algos.Incremental.result.Algos.Common.schedule)
      rep.Algos.Incremental.result.Algos.Common.makespan
  done

let test_incremental_drop_repair () =
  let rng = Workloads.Rng.create 223 in
  let t = Workloads.Gen.unrelated rng ~n:10 ~m:3 ~k:2 () in
  let base =
    Algos.List_scheduling.schedule ~order:Algos.List_scheduling.By_class t
  in
  let keep = [ 0; 1; 2; 3; 4; 6; 7; 8; 9 ] (* drop job 5 *) in
  let t' = I.induced t keep in
  let old = S.assignment base.Algos.Common.schedule in
  let seed = Array.of_list (List.map (fun j -> old.(j)) keep) in
  let rep = Algos.Incremental.repair t' ~seed in
  Alcotest.(check bool) "valid" true
    (S.is_valid t' rep.Algos.Incremental.result.Algos.Common.schedule);
  Alcotest.(check int) "nothing to place" 0 rep.Algos.Incremental.placed;
  (* pure rebalance: never worse than the seed schedule on the smaller
     instance *)
  let seeded = Algos.Common.result_of_assignment t' seed in
  Alcotest.(check bool) "never worse than seed" true
    (rep.Algos.Incremental.result.Algos.Common.makespan
    <= seeded.Algos.Common.makespan +. 1e-9)

let test_incremental_seed_sanitized () =
  let t =
    I.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 2.0; 3.0 |] ~job_class:[| 0; 0 |] ~setups:[| 1.0 |]
  in
  (* job 1 seeded out of range, job 0 seeded on an ineligible machine:
     both must be re-placed instead of crashing *)
  let rep = Algos.Incremental.repair t ~seed:[| 1; 7 |] in
  Alcotest.(check bool) "valid" true
    (S.is_valid t rep.Algos.Incremental.result.Algos.Common.schedule);
  Alcotest.(check int) "both placed" 2 rep.Algos.Incremental.placed;
  Alcotest.(check bool) "bad seed length rejected" true
    (try
       ignore (Algos.Incremental.repair t ~seed:[| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_incremental_batches_into_class () =
  (* machine 0 already paid class 0's big setup; the new classmate must
     batch there rather than open the class on machine 1 *)
  let t =
    I.identical ~num_machines:2 ~sizes:[| 1.0; 5.0 |] ~job_class:[| 0; 1 |]
      ~setups:[| 10.0; 0.0 |]
  in
  let t' =
    I.append_jobs t
      [ { I.nsize = 1.0; nclass = 0; nptimes = None; neligible = None } ]
  in
  let rep =
    Algos.Incremental.repair ~polish_steps:0 t' ~seed:[| 0; 1; -1 |]
  in
  Alcotest.(check int) "batched with its class" 0
    (S.machine_of rep.Algos.Incremental.result.Algos.Common.schedule 2);
  Alcotest.(check int) "no polish requested" 0
    (rep.Algos.Incremental.moves + rep.Algos.Incremental.swaps)

(* --- Portfolio --------------------------------------------------------------- *)

let test_portfolio_beats_members () =
  let rng = Workloads.Rng.create 97 in
  for _ = 1 to 6 do
    let t = Workloads.Gen.uniform rng ~n:10 ~m:3 ~k:3 () in
    let report = Algos.Portfolio.run t in
    Alcotest.(check bool) "valid" true
      (S.is_valid t report.Algos.Portfolio.best.Algos.Common.schedule);
    (* the winner is the min over all attempted makespans *)
    List.iter
      (fun (_, ms) ->
        Alcotest.(check bool) "best <= member" true
          (report.Algos.Portfolio.best.Algos.Common.makespan <= ms +. 1e-9))
      report.Algos.Portfolio.all;
    Alcotest.(check bool) "winner listed" true
      (List.mem_assoc report.Algos.Portfolio.winner report.Algos.Portfolio.all)
  done

let test_portfolio_skips_inapplicable () =
  let rng = Workloads.Rng.create 101 in
  let t = Workloads.Gen.unrelated rng ~n:8 ~m:3 ~k:2 () in
  let report = Algos.Portfolio.run t in
  (* LPT and PTAS require (semi-)uniform machines and must be skipped *)
  Alcotest.(check bool) "no lpt on unrelated" false
    (List.mem_assoc "lpt-placeholders" report.Algos.Portfolio.all);
  Alcotest.(check bool) "greedy always present" true
    (List.mem_assoc "greedy" report.Algos.Portfolio.all)

let test_portfolio_with_exact () =
  let rng = Workloads.Rng.create 103 in
  let t = Workloads.Gen.identical rng ~n:8 ~m:3 ~k:2 () in
  let report = Algos.Portfolio.run ~include_exact:true t in
  let opt = Algos.Exact.makespan t in
  check_float 1e-9 "exact wins or ties" opt
    report.Algos.Portfolio.best.Algos.Common.makespan

(* --- Splittable model (Correa et al. [5]) ----------------------------------- *)

let test_splittable_valid_and_bounded () =
  let rng = Workloads.Rng.create 89 in
  for _ = 1 to 8 do
    let t = Workloads.Gen.restricted_class_uniform rng ~n:10 ~m:3 ~k:3 () in
    let frac = Algos.Splittable.schedule t in
    Alcotest.(check bool) "valid fractional schedule" true
      (Algos.Splittable.is_valid t frac.Algos.Splittable.pieces);
    (* 2-approximation with the binary-search slack *)
    Alcotest.(check bool) "within 2(1+tol) of guess" true
      (frac.Algos.Splittable.makespan
      <= 2.0 *. frac.Algos.Splittable.guess *. (1.0 +. 1e-9));
    (* the splittable optimum is a relaxation of the integral problem *)
    let integral = Algos.Ra_class_uniform.schedule t in
    Alcotest.(check bool) "relaxation never needs a larger guess" true
      (frac.Algos.Splittable.makespan
      <= 2.0 *. (integral.Algos.Common.makespan +. 1e-9) *. 1.03)
  done

let test_splittable_loads_match () =
  let t =
    I.identical ~num_machines:2 ~sizes:[| 6.0; 6.0 |] ~job_class:[| 0; 0 |]
      ~setups:[| 2.0 |]
  in
  let pieces =
    [
      { Algos.Splittable.machine = 0; cls = 0; fraction = 0.5 };
      { Algos.Splittable.machine = 1; cls = 0; fraction = 0.5 };
    ]
  in
  let load = Algos.Splittable.loads t pieces in
  (* half of 12 units plus one setup each *)
  check_float 1e-9 "machine 0" 8.0 load.(0);
  check_float 1e-9 "machine 1" 8.0 load.(1);
  Alcotest.(check bool) "valid" true (Algos.Splittable.is_valid t pieces)

let test_splittable_validity_checks () =
  let t =
    I.identical ~num_machines:2 ~sizes:[| 6.0 |] ~job_class:[| 0 |]
      ~setups:[| 2.0 |]
  in
  Alcotest.(check bool) "fractions must sum to one" false
    (Algos.Splittable.is_valid t
       [ { Algos.Splittable.machine = 0; cls = 0; fraction = 0.4 } ]);
  Alcotest.(check bool) "no negative fractions" false
    (Algos.Splittable.is_valid t
       [
         { Algos.Splittable.machine = 0; cls = 0; fraction = 1.5 };
         { Algos.Splittable.machine = 1; cls = 0; fraction = -0.5 };
       ])

let test_splittable_beats_or_ties_integral () =
  (* splitting helps when one class dominates: the integral problem must
     pack whole jobs, the splittable one spreads them perfectly *)
  let t = Workloads.Curated.setup_trap ~m:2 ~jobs_per_class:3 in
  let frac = Algos.Splittable.schedule t in
  let integral = Algos.Exact.makespan t in
  Alcotest.(check bool) "splittable <= integral at same guarantee" true
    (frac.Algos.Splittable.guess <= integral *. (1.0 +. 0.03))

let test_splittable_rejects_uniform () =
  let t =
    I.uniform ~speeds:[| 1.0; 2.0 |] ~sizes:[| 1.0 |] ~job_class:[| 0 |]
      ~setups:[| 1.0 |]
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Splittable.schedule t);
       false
     with Invalid_argument _ -> true)

(* --- Configuration IP ------------------------------------------------------ *)

let test_config_ip_matches_exact () =
  let rng = Workloads.Rng.create 83 in
  for trial = 1 to 8 do
    let n = 5 + Workloads.Rng.int rng 5 in
    let m = 2 + Workloads.Rng.int rng 3 in
    let k = 1 + Workloads.Rng.int rng 3 in
    let t = Workloads.Gen.identical rng ~n ~m ~k () in
    let cfg = Algos.Config_ip.solve t in
    Alcotest.(check bool) "optimal flag" true cfg.Algos.Config_ip.optimal;
    check_float 1e-6
      (Printf.sprintf "trial %d matches B&B" trial)
      (Algos.Exact.makespan t)
      cfg.Algos.Config_ip.result.Algos.Common.makespan
  done

let test_config_ip_configurations_maximal () =
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 3.0; 3.0; 2.0 |]
      ~job_class:[| 0; 0; 1 |]
      ~setups:[| 1.0; 1.0 |]
  in
  let configs = Algos.Config_ip.configurations t ~makespan:7.0 in
  Alcotest.(check bool) "some configs" true (configs <> []);
  (* every configuration fits the guess: cost <= 7 *)
  let types = Array.of_list (Algos.Ptas_dp.item_types t) in
  List.iter
    (fun c ->
      let cost = ref 0.0 in
      let classes = Array.make 2 false in
      Array.iteri
        (fun ty count ->
          let k, p, _ = types.(ty) in
          cost := !cost +. (float_of_int count *. p);
          if count > 0 then classes.(k) <- true)
        c;
      Array.iteri (fun k present -> if present then cost := !cost +. t.I.setups.(k)) classes;
      Alcotest.(check bool) "fits" true (!cost <= 7.0 +. 1e-9))
    configs

let test_config_ip_uniform_supported () =
  let rng = Workloads.Rng.create 87 in
  let t = Workloads.Gen.uniform rng ~n:7 ~m:3 ~k:2 () in
  let cfg = Algos.Config_ip.solve t in
  let opt = Algos.Exact.makespan t in
  (* the uniform path is tolerance-bounded, not exact *)
  Alcotest.(check bool) "close to optimum" true
    (cfg.Algos.Config_ip.result.Algos.Common.makespan <= opt *. 1.001 +. 1e-6
    && cfg.Algos.Config_ip.result.Algos.Common.makespan >= opt -. 1e-6)

let test_config_ip_rejects_unrelated () =
  let t =
    I.unrelated ~p:[| [| 1.0 |] |] ~job_class:[| 0 |] ~setups:[| 1.0 |] ()
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Config_ip.solve t);
       false
     with Invalid_argument _ -> true)

let test_config_ip_trap_instance () =
  (* the setup trap has a pinned optimum of 2 * jobs_per_class *)
  let t = Workloads.Curated.setup_trap ~m:3 ~jobs_per_class:4 in
  let cfg = Algos.Config_ip.solve t in
  check_float 1e-9 "pinned optimum" 8.0
    cfg.Algos.Config_ip.result.Algos.Common.makespan;
  check_float 1e-9 "curated optimum agrees" 8.0
    (Option.get (Workloads.Curated.optimum t))

(* --- Curated instances ------------------------------------------------------ *)

let test_curated_graham () =
  let m = 3 in
  let t = Workloads.Curated.graham_lpt_worst ~m in
  let opt = Option.get (Workloads.Curated.optimum t) in
  check_float 1e-9 "optimum 3m" (float_of_int (3 * m)) opt;
  check_float 1e-9 "exact agrees" opt (Algos.Exact.makespan t);
  (* LPT achieves exactly (4/3 - 1/(3m)) * OPT on this family *)
  let lpt = Algos.Lpt.setup_oblivious t in
  let expected = (4.0 /. 3.0 -. (1.0 /. (3.0 *. float_of_int m))) *. opt in
  check_float 1e-6 "LPT worst case ratio" expected lpt.Algos.Common.makespan

let test_curated_dominant_class () =
  let t = Workloads.Curated.dominant_class ~m:3 in
  let lpt = Algos.Lpt.schedule t in
  let batch = Algos.Batch_lpt.schedule t in
  Alcotest.(check bool) "placeholders beat wholesale batching" true
    (lpt.Algos.Common.makespan < batch.Algos.Common.makespan)

let test_curated_speed_ladder () =
  let t = Workloads.Curated.speed_ladder ~groups:4 in
  Alcotest.(check int) "one machine per rung" 4 (I.num_machines t);
  (* the PTAS handles the wide speed range *)
  let r = Algos.Uniform_ptas.schedule ~eps:0.5 t in
  Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule)

let test_curated_validation () =
  Alcotest.(check bool) "graham m>=2" true
    (try
       ignore (Workloads.Curated.graham_lpt_worst ~m:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ladder range" true
    (try
       ignore (Workloads.Curated.speed_ladder ~groups:11);
       false
     with Invalid_argument _ -> true)

(* --- Speed groups (Remarks 2.5-2.7) --------------------------------------- *)

let test_speed_groups_overlap () =
  let sg = Algos.Speed_groups.create ~eps:0.5 ~makespan:10.0 ~vmin:1.0 in
  (* every speed lies in exactly two consecutive groups *)
  List.iter
    (fun v ->
      let g1, g2 = Algos.Speed_groups.groups_of_speed sg v in
      Alcotest.(check int) "consecutive" (g1 + 1) g2;
      Alcotest.(check bool) "v in g1" true
        (Algos.Speed_groups.group_lo sg g1 <= v
        && v < Algos.Speed_groups.group_hi sg g1);
      Alcotest.(check bool) "v in g2" true
        (Algos.Speed_groups.group_lo sg g2 <= v
        && v < Algos.Speed_groups.group_hi sg g2))
    [ 1.0; 1.5; 2.0; 7.9; 64.0; 1000.0 ]

let test_speed_groups_thresholds () =
  let sg = Algos.Speed_groups.create ~eps:0.5 ~makespan:10.0 ~vmin:1.0 in
  check_float 1e-12 "delta" 0.25 (Algos.Speed_groups.delta sg);
  check_float 1e-12 "gamma" 0.125 (Algos.Speed_groups.gamma sg)

let test_remark_25_core_or_fringe () =
  (* every job of a class is either core or fringe in simplified instances
     (size >= eps * setup) *)
  let sg = Algos.Speed_groups.create ~eps:0.5 ~makespan:10.0 ~vmin:1.0 in
  let setup = 8.0 in
  List.iter
    (fun size ->
      let core = Algos.Speed_groups.is_core_job sg ~setup ~size in
      let fringe = Algos.Speed_groups.is_fringe_job sg ~setup ~size in
      Alcotest.(check bool)
        (Printf.sprintf "size %g exactly one kind" size)
        true
        ((core || fringe) && not (core && fringe)))
    [ 4.0; 8.0; 31.9; 32.0; 100.0 ]

let test_remark_26_core_jobs_small_on_fringe_machines () =
  let eps = 0.5 in
  let sg = Algos.Speed_groups.create ~eps ~makespan:10.0 ~vmin:1.0 in
  let setup = 4.0 in
  (* core job sizes in [eps*s, s/delta); fringe machines: T*v >= s/gamma *)
  List.iter
    (fun size ->
      if Algos.Speed_groups.is_core_job sg ~setup ~size then
        List.iter
          (fun speed ->
            if Algos.Speed_groups.is_fringe_machine sg ~setup ~speed then
              Alcotest.(check bool) "core job small on fringe machine" true
                (Algos.Speed_groups.size_category sg ~speed size = `Small))
          [ 3.2; 5.0; 10.0; 100.0 ])
    [ 2.0; 4.0; 15.9 ]

let test_remark_27_core_job_big_in_core_group () =
  let eps = 0.5 in
  let sg = Algos.Speed_groups.create ~eps ~makespan:10.0 ~vmin:1.0 in
  List.iter
    (fun setup ->
      let g = Algos.Speed_groups.core_group sg ~setup in
      List.iter
        (fun size ->
          if Algos.Speed_groups.is_core_job sg ~setup ~size then begin
            (* some speed in group g makes the size big *)
            let lo = Algos.Speed_groups.group_lo sg g in
            let hi = Algos.Speed_groups.group_hi sg g in
            let found = ref false in
            let steps = 2000 in
            for s = 0 to steps - 1 do
              let v = lo *. ((hi /. lo) ** (float_of_int s /. float_of_int steps)) in
              if Algos.Speed_groups.size_category sg ~speed:v size = `Big then
                found := true
            done;
            Alcotest.(check bool)
              (Printf.sprintf "setup %g size %g big somewhere in core group"
                 setup size)
              true !found
          end)
        [ setup /. 2.0; setup; setup *. 2.0; setup *. 3.9 ])
    [ 10.0; 25.0; 80.0 ]

let test_native_group_definition () =
  let sg = Algos.Speed_groups.create ~eps:0.5 ~makespan:10.0 ~vmin:1.0 in
  let contains_all_big g size =
    (* big speeds are [p/T, p/(eps T)]; both ends must be in the group *)
    Algos.Speed_groups.group_lo sg g *. 10.0 <= size
    && size < 0.5 *. Algos.Speed_groups.group_hi sg g *. 10.0
  in
  List.iter
    (fun size ->
      let g = Algos.Speed_groups.native_group sg ~size in
      Alcotest.(check bool) "contains all big speeds" true
        (contains_all_big g size);
      Alcotest.(check bool) "minimal" false (contains_all_big (g - 1) size))
    [ 3.0; 10.0; 47.0; 512.0 ]

(* --- Relaxed schedules (Lemma 2.8) ----------------------------------------- *)

let test_relaxed_roundtrip_identical () =
  (* direction 1 (schedule -> relaxed) must be valid on identical machines
     at T = OPT, and direction 2 (relaxed -> schedule) must come back
     within the lemma's (1+O(eps)) factor *)
  let rng = Workloads.Rng.create 131 in
  let eps = 0.5 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.identical rng ~n:8 ~m:3 ~k:3 () in
    let exact = Algos.Exact.solve t in
    let opt = exact.Algos.Exact.result.Algos.Common.makespan in
    let ctx = Algos.Relaxed_schedule.make_ctx ~eps ~makespan:opt t in
    let relaxed =
      Algos.Relaxed_schedule.of_schedule ctx
        exact.Algos.Exact.result.Algos.Common.schedule
    in
    Alcotest.(check bool) "direction 1 valid" true
      (Algos.Relaxed_schedule.is_valid ctx relaxed);
    let back = Algos.Relaxed_schedule.to_schedule ctx relaxed in
    Alcotest.(check bool) "converted valid" true (S.is_valid t back);
    Alcotest.(check bool) "Lemma 2.8 factor" true
      (S.makespan back <= ((1.0 +. eps) ** 4.0) *. opt +. 1e-6)
  done

let test_relaxed_all_integral_is_identity () =
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 6.0; 5.0 |]
      ~job_class:[| 0; 1 |]
      ~setups:[| 1.0; 1.0 |]
  in
  (* both jobs big at T = 7: integral on their machines *)
  let ctx = Algos.Relaxed_schedule.make_ctx ~eps:0.5 ~makespan:7.0 t in
  let s = Core.Schedule.make t [| 0; 1 |] in
  let relaxed = Algos.Relaxed_schedule.of_schedule ctx s in
  Alcotest.(check bool) "all integral" true
    (Array.for_all Option.is_some relaxed.Algos.Relaxed_schedule.home);
  let back = Algos.Relaxed_schedule.to_schedule ctx relaxed in
  Alcotest.(check (array int)) "identity" (S.assignment s) (S.assignment back)

let test_relaxed_rejects_wrong_group () =
  let t =
    I.uniform
      ~speeds:[| 1.0; 64.0 |]
      ~sizes:[| 60.0; 1.0 |]
      ~job_class:[| 0; 0 |]
      ~setups:[| 1.0 |]
  in
  let ctx = Algos.Relaxed_schedule.make_ctx ~eps:0.5 ~makespan:2.0 t in
  (* job 0 is big only for fast speeds; claiming it integral on the slow
     machine violates the group constraint *)
  let bad = { Algos.Relaxed_schedule.home = [| Some 0; None |] } in
  Alcotest.(check bool) "invalid" false (Algos.Relaxed_schedule.is_valid ctx bad)

let test_relaxed_space_condition_detects_overflow () =
  (* more fractional volume than free space: invalid *)
  let t =
    I.identical ~num_machines:1
      ~sizes:[| 10.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
      ~job_class:[| 0; 0; 0; 0; 0; 0 |]
      ~setups:[| 0.0 |]
  in
  (* T = 10: machine full with the big job; 5 units fractional overflow *)
  let ctx = Algos.Relaxed_schedule.make_ctx ~eps:0.5 ~makespan:10.0 t in
  let bad =
    { Algos.Relaxed_schedule.home = [| Some 0; None; None; None; None; None |] }
  in
  Alcotest.(check bool) "overflow detected" false
    (Algos.Relaxed_schedule.is_valid ctx bad)

let test_relaxed_fringe_core_classification () =
  let t =
    I.identical ~num_machines:1
      ~sizes:[| 100.0; 3.0 |]
      ~job_class:[| 0; 0 |]
      ~setups:[| 4.0 |]
  in
  let ctx = Algos.Relaxed_schedule.make_ctx ~eps:0.5 ~makespan:200.0 t in
  (* s/delta = 16: job 0 (100) is fringe, job 1 (3) is core *)
  Alcotest.(check bool) "big job is fringe" true
    (Algos.Relaxed_schedule.is_fringe ctx 0);
  Alcotest.(check bool) "small job is core" false
    (Algos.Relaxed_schedule.is_fringe ctx 1)

let test_relaxed_uniform_conditional () =
  (* multi-speed case: direction 1 is not guaranteed to land in the valid
     region (group membership of the optimal assignment is instance-
     dependent), but whenever it does, direction 2 must deliver the
     factor; require that the valid case actually occurs *)
  let rng = Workloads.Rng.create 137 in
  let eps = 0.5 in
  let valid_seen = ref 0 in
  for _ = 1 to 12 do
    let t = Workloads.Gen.uniform rng ~n:7 ~m:3 ~k:2 ~speed_range:(1.0, 2.0) () in
    let exact = Algos.Exact.solve t in
    let opt = exact.Algos.Exact.result.Algos.Common.makespan in
    (* extra headroom makes validity more likely without weakening the
       conversion check *)
    let guess = opt *. 1.2 in
    let ctx = Algos.Relaxed_schedule.make_ctx ~eps ~makespan:guess t in
    let relaxed =
      Algos.Relaxed_schedule.of_schedule ctx
        exact.Algos.Exact.result.Algos.Common.schedule
    in
    if Algos.Relaxed_schedule.is_valid ctx relaxed then begin
      incr valid_seen;
      let back = Algos.Relaxed_schedule.to_schedule ctx relaxed in
      Alcotest.(check bool) "uniform conversion factor" true
        (S.makespan back <= ((1.0 +. eps) ** 4.0) *. guess +. 1e-6)
    end
  done;
  Alcotest.(check bool) "valid cases occurred" true (!valid_seen > 0)

(* --- Simplify (Lemmas 2.2-2.4) -------------------------------------------- *)

let test_simplify_preserves_classes () =
  let t = uniform_fixture () in
  let simp = Algos.Simplify.simplify ~eps:0.5 ~makespan:9.0 t in
  let s = Algos.Simplify.simplified simp in
  Alcotest.(check int) "classes preserved" (I.num_classes t) (I.num_classes s);
  Alcotest.(check bool) "uniform env" true
    (match s.I.env with I.Uniform _ -> true | _ -> false)

let test_simplify_target_inflation () =
  let t = uniform_fixture () in
  let simp = Algos.Simplify.simplify ~eps:0.25 ~makespan:8.0 t in
  check_float 1e-9 "target = (1+eps)^5 T" (8.0 *. (1.25 ** 5.0))
    (Algos.Simplify.target simp)

let test_simplify_sizes_rounded_up () =
  let t = uniform_fixture () in
  let simp = Algos.Simplify.simplify ~eps:0.5 ~makespan:9.0 t in
  let s = Algos.Simplify.simplified simp in
  (* every simplified size is at least the floor and on the rounding grid *)
  Array.iter
    (fun p -> Alcotest.(check bool) "positive size" true (p > 0.0))
    s.I.sizes

let test_simplify_reconstruct_roundtrip () =
  let rng = Workloads.Rng.create 53 in
  for _ = 1 to 10 do
    let t =
      Workloads.Gen.uniform rng ~n:6 ~m:3 ~k:2 ~setup_range:(5.0, 30.0) ()
    in
    let guess = Core.Bounds.naive_upper_bound t in
    let simp = Algos.Simplify.simplify ~eps:0.5 ~makespan:guess t in
    match
      Algos.Ptas_dp.feasible
        (Algos.Simplify.simplified simp)
        ~makespan:(Algos.Simplify.target simp)
    with
    | None -> Alcotest.fail "generous guess must be feasible"
    | Some sched ->
        let back = Algos.Simplify.reconstruct simp sched in
        Alcotest.(check bool) "reconstructed valid" true (S.is_valid t back);
        (* Lemma 2.3 back direction: at most (1+eps) * target *)
        Alcotest.(check bool) "reconstructed within (1+eps)*target" true
          (S.makespan back
          <= (1.5 *. Algos.Simplify.target simp) +. 1e-6)
  done

(* --- PTAS DP --------------------------------------------------------------- *)

let test_ptas_dp_matches_exact_feasibility () =
  let rng = Workloads.Rng.create 59 in
  for _ = 1 to 10 do
    let t = Workloads.Gen.uniform rng ~n:6 ~m:2 ~k:2 () in
    let opt = Algos.Exact.makespan t in
    (match Algos.Ptas_dp.feasible t ~makespan:(opt *. 1.000001) with
    | None -> Alcotest.fail "feasible at OPT"
    | Some sched ->
        Alcotest.(check bool) "schedule meets bound" true
          (S.makespan sched <= opt +. 1e-6));
    Alcotest.(check bool) "infeasible below OPT" true
      (Algos.Ptas_dp.feasible t ~makespan:(opt *. 0.999) = None)
  done

let test_ptas_dp_item_types () =
  let t =
    I.identical ~num_machines:2
      ~sizes:[| 3.0; 3.0; 3.0; 5.0 |]
      ~job_class:[| 0; 0; 1; 1 |]
      ~setups:[| 1.0; 1.0 |]
  in
  Alcotest.(check int) "grouped" 3 (Algos.Ptas_dp.num_item_types t)

(* --- Uniform PTAS ----------------------------------------------------------- *)

let test_uniform_ptas_ratio () =
  let rng = Workloads.Rng.create 61 in
  for _ = 1 to 6 do
    let t = Workloads.Gen.uniform rng ~n:6 ~m:2 ~k:2 () in
    let opt = Algos.Exact.makespan t in
    let eps = 0.5 in
    let r = Algos.Uniform_ptas.schedule ~eps t in
    Alcotest.(check bool) "valid" true (S.is_valid t r.Algos.Common.schedule);
    let bound = ((1.0 +. eps) ** 6.0) *. (1.0 +. (eps /. 4.0)) *. opt in
    Alcotest.(check bool) "PTAS guarantee" true
      (r.Algos.Common.makespan <= bound +. 1e-6)
  done

let test_uniform_ptas_improves_with_eps () =
  (* not guaranteed monotone instance-by-instance, but eps=1/4 must also
     respect its (tighter) bound *)
  let rng = Workloads.Rng.create 67 in
  let t = Workloads.Gen.uniform rng ~n:6 ~m:2 ~k:2 () in
  let opt = Algos.Exact.makespan t in
  let r = Algos.Uniform_ptas.schedule ~eps:0.25 t in
  let bound = (1.25 ** 6.0) *. (1.0 +. 0.0625) *. opt in
  Alcotest.(check bool) "tighter guarantee at eps=1/4" true
    (r.Algos.Common.makespan <= bound +. 1e-6)

let test_uniform_ptas_rejects_unrelated () =
  let t =
    I.unrelated ~p:[| [| 1.0 |] |] ~job_class:[| 0 |] ~setups:[| 1.0 |] ()
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Algos.Uniform_ptas.schedule ~eps:0.5 t);
       false
     with Invalid_argument _ -> true)

(* --- Properties -------------------------------------------------------------- *)

let instance_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* n = int_range 3 7 in
    let* m = int_range 2 3 in
    let* k = int_range 1 3 in
    return (seed, n, m, k))

(* Robustness sweep: every algorithm either returns a valid schedule or
   raises Invalid_argument (wrong environment) — never a wrong answer. *)
let prop_validity_sweep =
  QCheck.Test.make ~name:"all algorithms valid or cleanly rejected" ~count:30
    (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let instances =
        [
          Workloads.Gen.identical rng ~n ~m ~k ();
          Workloads.Gen.uniform rng ~n ~m ~k ();
          Workloads.Gen.unrelated rng ~n ~m ~k ();
          Workloads.Gen.restricted_class_uniform rng ~n ~m ~k ();
          Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k ();
        ]
      in
      let algos :
          (string * (Core.Instance.t -> Algos.Common.result)) list =
        [
          ("greedy", fun t -> Algos.List_scheduling.schedule t);
          ("lpt", Algos.Lpt.schedule);
          ("batch", Algos.Batch_lpt.schedule);
          ("ptas", fun t -> Algos.Uniform_ptas.schedule ~eps:0.5 t);
          ( "rounding",
            fun t ->
              fst (Algos.Randomized_rounding.schedule (Workloads.Rng.create seed) t) );
          ("ra2", fun t -> Algos.Ra_class_uniform.schedule t);
          ("cu3", fun t -> Algos.Um_class_uniform.schedule t);
        ]
      in
      List.for_all
        (fun t ->
          List.for_all
            (fun (_, algo) ->
              match algo t with
              | r ->
                  S.is_valid t r.Algos.Common.schedule
                  && Float.abs
                       (r.Algos.Common.makespan
                       -. S.makespan r.Algos.Common.schedule)
                     < 1e-9
                  && r.Algos.Common.makespan
                     >= Core.Bounds.lower_bound t -. 1e-6
              | exception Invalid_argument _ -> true)
            algos)
        instances)

let prop_greedy_vs_exact =
  QCheck.Test.make ~name:"exact <= greedy on random uniform instances"
    ~count:40 (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.uniform rng ~n ~m ~k () in
      let greedy = Algos.List_scheduling.schedule t in
      let exact = Algos.Exact.solve t in
      exact.Algos.Exact.result.Algos.Common.makespan
      <= greedy.Algos.Common.makespan +. 1e-9)

let prop_lpt_factor =
  QCheck.Test.make ~name:"LPT respects the 4.74 factor" ~count:40
    (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.uniform rng ~n ~m ~k ~setup_range:(1.0, 120.0) () in
      let r = Algos.Lpt.schedule t in
      let opt = Algos.Exact.makespan t in
      r.Algos.Common.makespan <= (Algos.Lpt.approximation_factor *. opt) +. 1e-6)

let prop_lp_lower_bound_sound =
  QCheck.Test.make ~name:"LP lower bound never exceeds OPT" ~count:25
    (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.unrelated rng ~n ~m ~k () in
      let opt = Algos.Exact.makespan t in
      let bound = Algos.Lp_um.lower_bound t in
      bound.Algos.Lp_um.lower <= opt +. 1e-6)

let prop_ra_two_approx =
  QCheck.Test.make ~name:"RA class-uniform stays within 2(1+tol) OPT"
    ~count:25 (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.restricted_class_uniform rng ~n ~m ~k () in
      let r = Algos.Ra_class_uniform.schedule t in
      let opt = Algos.Exact.makespan t in
      r.Algos.Common.makespan <= (2.0 *. 1.03 *. opt) +. 1e-6)

let prop_um_three_approx =
  QCheck.Test.make ~name:"class-uniform ptimes stays within 3(1+tol) OPT"
    ~count:25 (QCheck.make instance_gen) (fun (seed, n, m, k) ->
      let rng = Workloads.Rng.create seed in
      let t = Workloads.Gen.class_uniform_ptimes rng ~n ~m ~k () in
      let r = Algos.Um_class_uniform.schedule t in
      let opt = Algos.Exact.makespan t in
      r.Algos.Common.makespan <= (3.0 *. 1.03 *. opt) +. 1e-6)

let () =
  Alcotest.run "algos"
    [
      ( "list scheduling",
        [
          Alcotest.test_case "valid all orders" `Quick
            test_list_scheduling_valid;
          Alcotest.test_case "eligibility" `Quick
            test_list_scheduling_respects_eligibility;
          Alcotest.test_case "within bounds" `Quick
            test_list_scheduling_within_naive_bound;
        ] );
      ( "exact",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_exact_matches_brute_force;
          Alcotest.test_case "single machine" `Quick test_exact_single_machine;
          Alcotest.test_case "beats greedy" `Quick
            test_exact_beats_greedy_or_ties;
          Alcotest.test_case "node limit" `Quick test_exact_respects_node_limit;
          Alcotest.test_case "parallel pool reuse" `Quick
            test_exact_parallel_pool_reuse;
          Alcotest.test_case "parallel identical symmetry" `Quick
            test_exact_parallel_identical_symmetry;
        ] );
      ( "lpt",
        [
          Alcotest.test_case "factor on fixture" `Quick
            test_lpt_factor_on_fixture;
          Alcotest.test_case "factor random" `Quick test_lpt_factor_random;
          Alcotest.test_case "small jobs bundled" `Quick
            test_lpt_small_jobs_bundled;
          Alcotest.test_case "rejects unrelated" `Quick
            test_lpt_rejects_unrelated;
          Alcotest.test_case "oblivious degrades" `Quick
            test_setup_oblivious_degrades;
          Alcotest.test_case "batch lpt valid" `Quick
            test_batch_lpt_valid_and_one_setup_per_class;
          Alcotest.test_case "batch lpt dominant class" `Quick
            test_batch_lpt_loses_on_dominant_class;
          Alcotest.test_case "batch lpt rejects unrelated" `Quick
            test_batch_lpt_rejects_unrelated;
        ] );
      ( "lp um",
        [
          Alcotest.test_case "sandwich" `Quick test_lp_um_sandwich;
          Alcotest.test_case "solution constraints" `Quick
            test_lp_um_solution_constraints;
          Alcotest.test_case "infeasible below bound" `Quick
            test_lp_um_infeasible_below_bound;
        ] );
      ( "randomized rounding",
        [
          Alcotest.test_case "valid and bounded" `Quick
            test_rounding_valid_and_bounded;
          Alcotest.test_case "deterministic" `Quick
            test_rounding_deterministic_given_seed;
          Alcotest.test_case "stats" `Quick test_rounding_stats;
        ] );
      ( "ra class uniform",
        [
          Alcotest.test_case "guarantee" `Quick test_ra_class_uniform_guarantee;
          Alcotest.test_case "probe semantics" `Quick
            test_ra_class_uniform_probe_semantics;
          Alcotest.test_case "rejects nonuniform" `Quick
            test_ra_class_uniform_rejects_nonuniform;
        ] );
      ( "um class uniform",
        [
          Alcotest.test_case "guarantee" `Quick test_um_class_uniform_guarantee;
          Alcotest.test_case "rejects general" `Quick
            test_um_class_uniform_rejects_general;
        ] );
      ( "exact ilp",
        [
          Alcotest.test_case "matches B&B" `Quick test_exact_ilp_matches_bnb;
          Alcotest.test_case "feasibility probe" `Quick
            test_exact_ilp_feasible_probe;
        ] );
      ( "local search",
        [
          Alcotest.test_case "never worse" `Quick test_local_search_never_worse;
          Alcotest.test_case "fixes obvious" `Quick
            test_local_search_fixes_obvious;
          Alcotest.test_case "swap needed" `Quick test_local_search_swap_needed;
          Alcotest.test_case "respects eligibility" `Quick
            test_local_search_respects_eligibility;
          Alcotest.test_case "max steps" `Quick test_local_search_max_steps;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "add repair" `Quick test_incremental_add_repair;
          Alcotest.test_case "drop repair" `Quick test_incremental_drop_repair;
          Alcotest.test_case "seed sanitized" `Quick
            test_incremental_seed_sanitized;
          Alcotest.test_case "batches into class" `Quick
            test_incremental_batches_into_class;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "beats members" `Quick test_portfolio_beats_members;
          Alcotest.test_case "skips inapplicable" `Quick
            test_portfolio_skips_inapplicable;
          Alcotest.test_case "with exact" `Quick test_portfolio_with_exact;
        ] );
      ( "splittable",
        [
          Alcotest.test_case "valid and bounded" `Quick
            test_splittable_valid_and_bounded;
          Alcotest.test_case "loads" `Quick test_splittable_loads_match;
          Alcotest.test_case "validity checks" `Quick
            test_splittable_validity_checks;
          Alcotest.test_case "relaxation" `Quick
            test_splittable_beats_or_ties_integral;
          Alcotest.test_case "rejects uniform" `Quick
            test_splittable_rejects_uniform;
        ] );
      ( "config ip",
        [
          Alcotest.test_case "matches exact" `Quick test_config_ip_matches_exact;
          Alcotest.test_case "configurations fit" `Quick
            test_config_ip_configurations_maximal;
          Alcotest.test_case "uniform supported" `Quick
            test_config_ip_uniform_supported;
          Alcotest.test_case "rejects unrelated" `Quick
            test_config_ip_rejects_unrelated;
          Alcotest.test_case "setup trap" `Quick test_config_ip_trap_instance;
        ] );
      ( "curated",
        [
          Alcotest.test_case "graham worst case" `Quick test_curated_graham;
          Alcotest.test_case "dominant class" `Quick
            test_curated_dominant_class;
          Alcotest.test_case "speed ladder" `Quick test_curated_speed_ladder;
          Alcotest.test_case "validation" `Quick test_curated_validation;
        ] );
      ( "speed groups",
        [
          Alcotest.test_case "overlap" `Quick test_speed_groups_overlap;
          Alcotest.test_case "thresholds" `Quick test_speed_groups_thresholds;
          Alcotest.test_case "remark 2.5" `Quick test_remark_25_core_or_fringe;
          Alcotest.test_case "remark 2.6" `Quick
            test_remark_26_core_jobs_small_on_fringe_machines;
          Alcotest.test_case "remark 2.7" `Quick
            test_remark_27_core_job_big_in_core_group;
          Alcotest.test_case "native group" `Quick test_native_group_definition;
        ] );
      ( "relaxed schedule",
        [
          Alcotest.test_case "roundtrip identical" `Quick
            test_relaxed_roundtrip_identical;
          Alcotest.test_case "all integral identity" `Quick
            test_relaxed_all_integral_is_identity;
          Alcotest.test_case "rejects wrong group" `Quick
            test_relaxed_rejects_wrong_group;
          Alcotest.test_case "space condition" `Quick
            test_relaxed_space_condition_detects_overflow;
          Alcotest.test_case "fringe vs core" `Quick
            test_relaxed_fringe_core_classification;
          Alcotest.test_case "uniform conditional" `Quick
            test_relaxed_uniform_conditional;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "preserves classes" `Quick
            test_simplify_preserves_classes;
          Alcotest.test_case "target inflation" `Quick
            test_simplify_target_inflation;
          Alcotest.test_case "sizes positive" `Quick
            test_simplify_sizes_rounded_up;
          Alcotest.test_case "reconstruct roundtrip" `Quick
            test_simplify_reconstruct_roundtrip;
        ] );
      ( "ptas dp",
        [
          Alcotest.test_case "matches exact feasibility" `Quick
            test_ptas_dp_matches_exact_feasibility;
          Alcotest.test_case "item types" `Quick test_ptas_dp_item_types;
        ] );
      ( "uniform ptas",
        [
          Alcotest.test_case "ratio" `Quick test_uniform_ptas_ratio;
          Alcotest.test_case "eps 1/4" `Quick test_uniform_ptas_improves_with_eps;
          Alcotest.test_case "rejects unrelated" `Quick
            test_uniform_ptas_rejects_unrelated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_validity_sweep;
            prop_greedy_vs_exact;
            prop_lpt_factor;
            prop_lp_lower_bound_sound;
            prop_ra_two_approx;
            prop_um_three_approx;
          ] );
    ]
