(* Tests for lib/check: the violation helpers, oracles, property
   registry, metamorphic relations, shrinker, corpus and fuzz driver. *)

module I = Core.Instance
module R = Workloads.Rng

let identical_small () =
  I.identical ~num_machines:2
    ~sizes:[| 4.0; 3.0; 3.0; 2.0 |]
    ~job_class:[| 0; 1; 0; 1 |] ~setups:[| 1.0; 2.0 |]

(* machine 0 is ineligible for class-1 jobs: the stacking mutant must
   trip schedule-valid here *)
let restricted_small () =
  I.restricted
    ~eligible:[| [| true; true; false |]; [| false; true; true |] |]
    ~sizes:[| 5.0; 4.0; 3.0 |]
    ~job_class:[| 0; 1; 1 |] ~setups:[| 1.0; 1.0 |]

let unrelated_with_inf () =
  I.unrelated
    ~p:[| [| 2.0; infinity; 4.0 |]; [| 3.0; 5.0; infinity |] |]
    ~job_class:[| 0; 1; 0 |] ~setups:[| 1.0; 2.0 |]
    ~setup_matrix:[| [| 1.0; infinity |]; [| 2.0; 3.0 |] |]
    ()

let bigger_identical seed n =
  Workloads.Gen.identical (R.create seed) ~n ~m:3 ~k:3 ()

(* --- Violation ------------------------------------------------------------ *)

let test_violation_tolerances () =
  Alcotest.(check bool) "leq strict" true (Check.Violation.leq 1.0 2.0);
  Alcotest.(check bool) "leq with slack" true
    (Check.Violation.leq (1.0 +. 1e-9) 1.0);
  Alcotest.(check bool) "leq violated" false (Check.Violation.leq 1.1 1.0);
  Alcotest.(check bool) "leq infinity" true (Check.Violation.leq 1.0 infinity);
  Alcotest.(check bool) "approx_eq inf" true
    (Check.Violation.approx_eq infinity infinity);
  Alcotest.(check bool) "approx_eq near" true
    (Check.Violation.approx_eq 100.0 (100.0 +. 1e-8));
  Alcotest.(check bool) "approx_eq far" false
    (Check.Violation.approx_eq 100.0 101.0);
  let v = Check.Violation.v ~algo:"a" ~prop:"p" "x=%d" 3 in
  Alcotest.(check string) "to_string" "a/p: x=3" (Check.Violation.to_string v)

(* --- Oracle --------------------------------------------------------------- *)

let test_oracle_exact_path () =
  let o = Check.Oracle.compute (identical_small ()) in
  Alcotest.(check bool) "opt proven" true (Option.is_some o.Check.Oracle.opt);
  Alcotest.(check (list string)) "self-consistent" []
    (List.map Check.Violation.to_string (Check.Oracle.consistent o));
  let opt = Option.get o.Check.Oracle.opt in
  Alcotest.(check bool) "lb <= opt" true (o.Check.Oracle.lb <= opt +. 1e-9);
  Alcotest.(check bool) "opt <= ub" true (opt <= o.Check.Oracle.ub +. 1e-9)

let test_oracle_bounds_path () =
  let o = Check.Oracle.compute ~exact_job_limit:2 (bigger_identical 3 20) in
  Alcotest.(check bool) "no opt claimed" true (o.Check.Oracle.opt = None);
  Alcotest.(check int) "no nodes spent" 0 o.Check.Oracle.nodes;
  Alcotest.(check (list string)) "self-consistent" []
    (List.map Check.Violation.to_string (Check.Oracle.consistent o));
  Alcotest.(check bool) "sandwich" true
    (o.Check.Oracle.lb <= o.Check.Oracle.ub +. 1e-9);
  Alcotest.(check bool) "describe nonempty" true
    (String.length (Check.Oracle.describe o) > 0)

(* --- Props ---------------------------------------------------------------- *)

let test_registry_names () =
  let names =
    List.map (fun a -> a.Check.Props.name) (Check.Props.registry ())
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("registry has " ^ expected) true
        (List.mem expected names))
    [
      "greedy"; "greedy-longest"; "greedy-by-class"; "lpt-placeholders";
      "batch-lpt"; "ptas"; "rounding"; "ra2"; "cu3"; "portfolio";
    ];
  Alcotest.(check bool) "mutant not registered" false
    (List.mem Check.Props.mutant.Check.Props.name names)

let test_all_algos_clean_on_small_instance () =
  let t = identical_small () in
  let oracle = Check.Oracle.compute t in
  List.iter
    (fun algo ->
      Alcotest.(check (list string))
        (algo.Check.Props.name ^ " clean")
        []
        (List.map Check.Violation.to_string
           (Check.Props.check_algo ~oracle ~seed:1 t algo)))
    (Check.Props.registry ())

let test_mutant_trips_schedule_valid () =
  let t = restricted_small () in
  let oracle = Check.Oracle.compute t in
  let vs = Check.Props.check_algo ~oracle ~seed:1 t Check.Props.mutant in
  Alcotest.(check bool) "violations found" true (vs <> []);
  Alcotest.(check bool) "schedule-valid among them" true
    (List.exists (fun v -> v.Check.Violation.prop = "schedule-valid") vs)

let test_mutant_trips_ratio_bound () =
  (* two equal jobs, two machines: opt splits, the mutant stacks *)
  let t =
    I.identical ~num_machines:2 ~sizes:[| 10.0; 10.0 |] ~job_class:[| 0; 0 |]
      ~setups:[| 1.0 |]
  in
  let oracle = Check.Oracle.compute t in
  let vs = Check.Props.check_algo ~oracle ~seed:1 t Check.Props.mutant in
  Alcotest.(check bool) "ratio-bound tripped" true
    (List.exists (fun v -> v.Check.Violation.prop = "ratio-bound") vs)

let test_io_roundtrip_with_inf () =
  (* regression: "inf" entries in unrelated/restricted instances must
     survive print -> parse -> print unchanged *)
  Alcotest.(check (list string)) "unrelated with inf" []
    (List.map Check.Violation.to_string
       (Check.Props.check_io_roundtrip (unrelated_with_inf ())));
  Alcotest.(check (list string)) "restricted" []
    (List.map Check.Violation.to_string
       (Check.Props.check_io_roundtrip (restricted_small ())))

(* --- Portfolio invariants ------------------------------------------------- *)

let portfolio_never_worse t =
  let report = Algos.Portfolio.run ~seed:1 t in
  let best_member =
    List.fold_left
      (fun acc (_, ms) -> Float.min acc ms)
      infinity report.Algos.Portfolio.all
  in
  Alcotest.(check bool) "portfolio <= best member" true
    (Check.Violation.leq
       report.Algos.Portfolio.best.Algos.Common.makespan
       best_member)

let test_portfolio_exact_oracle () =
  let t = identical_small () in
  portfolio_never_worse t;
  let oracle = Check.Oracle.compute t in
  Alcotest.(check bool) "exact oracle in play" true
    (Option.is_some oracle.Check.Oracle.opt);
  let algo =
    Option.get (Check.Props.find ~name:"portfolio" (Check.Props.registry ()))
  in
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Check.Violation.to_string
       (Check.Props.check_algo ~oracle ~seed:1 t algo))

let test_portfolio_bounds_oracle () =
  let t = bigger_identical 11 18 in
  portfolio_never_worse t;
  let oracle = Check.Oracle.compute ~exact_job_limit:2 t in
  Alcotest.(check bool) "bounds oracle in play" true
    (oracle.Check.Oracle.opt = None);
  let algo =
    Option.get (Check.Props.find ~name:"portfolio" (Check.Props.registry ()))
  in
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Check.Violation.to_string
       (Check.Props.check_algo ~oracle ~seed:1 t algo))

(* --- Metamorph ------------------------------------------------------------ *)

let test_scale_times () =
  let t = identical_small () in
  let t2 = Check.Metamorph.scale_times t 4.0 in
  Alcotest.(check (float 1e-9)) "sizes scaled" 16.0 t2.I.sizes.(0);
  Alcotest.(check (float 1e-9)) "setups scaled" 4.0 t2.I.setups.(0);
  let lb = Core.Bounds.lower_bound t in
  let lb2 = Core.Bounds.lower_bound t2 in
  Alcotest.(check (float 1e-9)) "lower bound equivariant" (4.0 *. lb) lb2

let test_metamorph_clean () =
  List.iter
    (fun t ->
      let oracle = Check.Oracle.compute t in
      Alcotest.(check (list string)) "no metamorphic violations" []
        (List.map Check.Violation.to_string
           (Check.Metamorph.check ~rng:(R.create 5) ~oracle ~seed:5
              ~exact_job_limit:9 t
              (List.filter
                 (fun a -> a.Check.Props.cost = Check.Props.Cheap)
                 (Check.Props.registry ())))))
    [
      identical_small ();
      restricted_small ();
      unrelated_with_inf ();
      Workloads.Gen.uniform (R.create 8) ~n:7 ~m:3 ~k:2 ();
    ]

let test_metamorph_add_job_monotone () =
  (* positive: cloning any job never lowers the certified lower bound or
     a proven optimum, across every environment *)
  List.iter
    (fun t ->
      let oracle = Check.Oracle.compute t in
      for trial = 1 to 8 do
        Alcotest.(check (list string))
          (Printf.sprintf "add-job clean trial %d" trial)
          []
          (List.map Check.Violation.to_string
             (Check.Metamorph.check_add_job
                ~rng:(R.create (40 + trial))
                ~oracle ~exact_job_limit:9 t))
      done)
    [
      identical_small ();
      restricted_small ();
      unrelated_with_inf ();
      Workloads.Gen.uniform (R.create 8) ~n:7 ~m:3 ~k:2 ();
    ];
  (* negative: an oracle claiming an absurdly high optimum must trip the
     monotonicity relation — proves the check can actually fire *)
  let t = identical_small () in
  let oracle = Check.Oracle.compute t in
  let lying = { oracle with Check.Oracle.opt = Some 1e9 } in
  let viols =
    Check.Metamorph.check_add_job ~rng:(R.create 3) ~oracle:lying
      ~exact_job_limit:9 t
  in
  Alcotest.(check bool) "violation fires" true
    (List.exists
       (fun (v : Check.Violation.t) -> v.Check.Violation.prop = "meta-addjob-opt")
       viols)

(* --- Shrink --------------------------------------------------------------- *)

let test_drop_machine () =
  let t =
    I.restricted
      ~eligible:
        [| [| true; true; false |]; [| true; true; true |]; [| false; false; true |] |]
      ~sizes:[| 5.0; 4.0; 3.0 |]
      ~job_class:[| 0; 1; 1 |] ~setups:[| 1.0; 1.0 |]
  in
  (* machine 1 covers everything, so machine 0 is droppable; machine 1
     is job 2's companion to machine 2 and dropping it strands nothing,
     but dropping both ends of restricted_small would *)
  (match Check.Shrink.drop_machine t 0 with
  | None -> Alcotest.fail "machine 0 should be droppable"
  | Some t' -> Alcotest.(check int) "machines" 2 (I.num_machines t'));
  (* in restricted_small each machine is some job's only host *)
  let t2 = restricted_small () in
  Alcotest.(check bool) "sole host not droppable" true
    (Check.Shrink.drop_machine t2 0 = None
    && Check.Shrink.drop_machine t2 1 = None);
  let one = I.identical ~num_machines:1 ~sizes:[| 1.0 |] ~job_class:[| 0 |]
      ~setups:[| 1.0 |] in
  Alcotest.(check bool) "last machine not droppable" true
    (Check.Shrink.drop_machine one 0 = None)

let test_merge_classes () =
  let t = identical_small () in
  match Check.Shrink.merge_classes t ~src:1 ~dst:0 with
  | None -> Alcotest.fail "merge should apply"
  | Some t' ->
      Alcotest.(check int) "classes" 1 (I.num_classes t');
      Alcotest.(check int) "jobs kept" 4 (I.num_jobs t');
      Array.iter
        (fun k -> Alcotest.(check int) "all class 0" 0 k)
        t'.I.job_class;
      Alcotest.(check bool) "src=dst rejected" true
        (Check.Shrink.merge_classes t ~src:0 ~dst:0 = None)

let test_coarsen_idempotent () =
  let t = Workloads.Gen.unrelated (R.create 9) ~n:8 ~m:3 ~k:2 () in
  let c1 = Check.Shrink.coarsen t in
  let c2 = Check.Shrink.coarsen c1 in
  Alcotest.(check string) "idempotent"
    (Core.Instance_io.to_string c1)
    (Core.Instance_io.to_string c2)

let test_shrink_to_predicate () =
  let t = bigger_identical 13 16 in
  let still_fails t' = I.num_jobs t' >= 3 in
  let shrunk, steps = Check.Shrink.shrink ~still_fails t in
  Alcotest.(check int) "minimal wrt predicate" 3 (I.num_jobs shrunk);
  Alcotest.(check bool) "steps counted" true (steps > 0);
  Alcotest.(check int) "machines dropped too" 1 (I.num_machines shrunk)

let test_shrink_predicate_exception_is_false () =
  let t = bigger_identical 17 10 in
  let still_fails t' =
    if I.num_jobs t' < 10 then failwith "crash" else true
  in
  let shrunk, _ = Check.Shrink.shrink ~still_fails t in
  Alcotest.(check int) "unshrunk" 10 (I.num_jobs shrunk)

(* --- Corpus --------------------------------------------------------------- *)

let test_corpus_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "check-corpus-test" in
  List.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (if Sys.file_exists dir then Array.to_list (Sys.readdir dir) else []);
  let t = unrelated_with_inf () in
  let v =
    Check.Violation.v ~algo:"greedy" ~prop:"lb-sandwich" "made-up detail %d" 7
  in
  let path = Check.Corpus.write ~dir ~seed:99 v t in
  match Check.Corpus.load path with
  | Error e -> Alcotest.fail e
  | Ok entry ->
      Alcotest.(check string) "algo" "greedy" entry.Check.Corpus.algo;
      Alcotest.(check string) "prop" "lb-sandwich" entry.Check.Corpus.prop;
      Alcotest.(check int) "seed" 99 entry.Check.Corpus.seed;
      Alcotest.(check string) "detail" "made-up detail 7"
        entry.Check.Corpus.detail;
      Alcotest.(check string) "instance preserved"
        (Core.Instance_io.to_string t)
        (Core.Instance_io.to_string entry.Check.Corpus.instance);
      (* greedy is correct, so replaying this entry reports it fixed *)
      Alcotest.(check (list string)) "replays clean" []
        (List.map Check.Violation.to_string (Check.Corpus.replay entry));
      Alcotest.(check int) "load_dir sees it" 1
        (List.length (Check.Corpus.load_dir dir))

let test_corpus_unknown_algo () =
  let entry =
    {
      Check.Corpus.algo = "retired-solver";
      prop = "ratio-bound";
      seed = 1;
      detail = "";
      instance = identical_small ();
    }
  in
  match Check.Corpus.replay entry with
  | [ v ] ->
      Alcotest.(check string) "synthetic violation" "corpus-unknown-algo"
        v.Check.Violation.prop
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

(* --- Driver --------------------------------------------------------------- *)

let test_driver_clean_run () =
  let cfg =
    { Check.Driver.default with budget = Check.Driver.Cases 40; seed = 19 }
  in
  let s = Check.Driver.run cfg in
  Alcotest.(check int) "cases" 40 s.Check.Driver.cases;
  Alcotest.(check int) "violations" 0 s.Check.Driver.violations

let test_driver_deterministic_across_jobs () =
  let cfg =
    { Check.Driver.default with budget = Check.Driver.Cases 24; seed = 23 }
  in
  let s1 = Check.Driver.run cfg in
  let s2 = Check.Driver.run { cfg with jobs = 3 } in
  Alcotest.(check int) "same cases" s1.Check.Driver.cases s2.Check.Driver.cases;
  Alcotest.(check int) "same violations" s1.Check.Driver.violations
    s2.Check.Driver.violations

let test_driver_catches_and_shrinks_mutant () =
  let registry = Check.Props.mutant :: Check.Props.registry () in
  let cfg =
    {
      Check.Driver.default with
      budget = Check.Driver.Cases 30;
      seed = 29;
      algo_filter = [ "mutant-stack" ];
    }
  in
  let s = Check.Driver.run ~registry cfg in
  Alcotest.(check bool) "mutant caught" true (s.Check.Driver.failures <> []);
  List.iter
    (fun (f : Check.Driver.failure) ->
      Alcotest.(check bool) "shrunk to <= 6 jobs" true
        (I.num_jobs f.Check.Driver.shrunk <= 6);
      Alcotest.(check bool) "shrunk still smaller or equal" true
        (I.num_jobs f.Check.Driver.shrunk
        <= I.num_jobs f.Check.Driver.instance))
    s.Check.Driver.failures

let test_driver_env_filter () =
  let cfg =
    {
      Check.Driver.default with
      budget = Check.Driver.Cases 12;
      seed = 31;
      envs = [ Check.Driver.Restricted ];
    }
  in
  let s = Check.Driver.run cfg in
  Alcotest.(check int) "violations" 0 s.Check.Driver.violations;
  List.iter
    (fun (f : Check.Driver.failure) ->
      Alcotest.(check string) "env respected" "restricted" f.Check.Driver.env)
    s.Check.Driver.failures

let () =
  Alcotest.run "check"
    [
      ( "violation",
        [ Alcotest.test_case "tolerances" `Quick test_violation_tolerances ] );
      ( "oracle",
        [
          Alcotest.test_case "exact path" `Quick test_oracle_exact_path;
          Alcotest.test_case "bounds path" `Quick test_oracle_bounds_path;
        ] );
      ( "props",
        [
          Alcotest.test_case "registry names" `Quick test_registry_names;
          Alcotest.test_case "all clean on small" `Quick
            test_all_algos_clean_on_small_instance;
          Alcotest.test_case "mutant schedule-valid" `Quick
            test_mutant_trips_schedule_valid;
          Alcotest.test_case "mutant ratio-bound" `Quick
            test_mutant_trips_ratio_bound;
          Alcotest.test_case "io roundtrip inf" `Quick
            test_io_roundtrip_with_inf;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "exact oracle" `Quick test_portfolio_exact_oracle;
          Alcotest.test_case "bounds oracle" `Quick
            test_portfolio_bounds_oracle;
        ] );
      ( "metamorph",
        [
          Alcotest.test_case "scale_times" `Quick test_scale_times;
          Alcotest.test_case "clean instances" `Quick test_metamorph_clean;
          Alcotest.test_case "add-job monotonicity" `Quick
            test_metamorph_add_job_monotone;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "drop machine" `Quick test_drop_machine;
          Alcotest.test_case "merge classes" `Quick test_merge_classes;
          Alcotest.test_case "coarsen idempotent" `Quick
            test_coarsen_idempotent;
          Alcotest.test_case "shrinks to predicate" `Quick
            test_shrink_to_predicate;
          Alcotest.test_case "predicate exception" `Quick
            test_shrink_predicate_exception_is_false;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "unknown algo" `Quick test_corpus_unknown_algo;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clean run" `Quick test_driver_clean_run;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_driver_deterministic_across_jobs;
          Alcotest.test_case "catches mutant" `Quick
            test_driver_catches_and_shrinks_mutant;
          Alcotest.test_case "env filter" `Quick test_driver_env_filter;
        ] );
    ]
