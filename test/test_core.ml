(* Tests for the core model: instances, schedules, bounds, binary search,
   serialization. *)

let check_float = Alcotest.(check (float 1e-9))

(* A small shared fixture: 2 machines (uniform speeds 1 and 2), 4 jobs in 2
   classes. *)
let uniform_fixture () =
  Core.Instance.uniform ~speeds:[| 1.0; 2.0 |]
    ~sizes:[| 4.0; 2.0; 6.0; 2.0 |]
    ~job_class:[| 0; 0; 1; 1 |]
    ~setups:[| 3.0; 1.0 |]

let unrelated_fixture () =
  Core.Instance.unrelated
    ~p:[| [| 1.0; 2.0; infinity |]; [| 4.0; 1.0; 5.0 |] |]
    ~job_class:[| 0; 1; 1 |]
    ~setups:[| 2.0; 3.0 |]
    ()

(* --- Instance ---------------------------------------------------------- *)

let test_instance_accessors () =
  let t = uniform_fixture () in
  Alcotest.(check int) "jobs" 4 (Core.Instance.num_jobs t);
  Alcotest.(check int) "machines" 2 (Core.Instance.num_machines t);
  Alcotest.(check int) "classes" 2 (Core.Instance.num_classes t);
  check_float "ptime slow" 4.0 (Core.Instance.ptime t 0 0);
  check_float "ptime fast" 2.0 (Core.Instance.ptime t 1 0);
  check_float "setup slow" 3.0 (Core.Instance.setup_time t 0 0);
  check_float "setup fast" 1.5 (Core.Instance.setup_time t 1 0);
  check_float "speed" 2.0 (Core.Instance.speed t 1);
  Alcotest.(check (list int)) "class 1 jobs" [ 2; 3 ]
    (Core.Instance.jobs_of_class t 1);
  check_float "class size" 8.0 (Core.Instance.class_size t 1);
  check_float "total size" 14.0 (Core.Instance.total_size t)

let test_instance_identical () =
  let t =
    Core.Instance.identical ~num_machines:3 ~sizes:[| 1.0; 2.0 |]
      ~job_class:[| 0; 0 |] ~setups:[| 5.0 |]
  in
  check_float "ptime" 2.0 (Core.Instance.ptime t 2 1);
  check_float "setup" 5.0 (Core.Instance.setup_time t 1 0);
  Alcotest.(check bool) "eligible" true (Core.Instance.job_eligible t 0 0)

let test_instance_restricted () =
  let t =
    Core.Instance.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 1 |] ~setups:[| 5.0; 6.0 |]
  in
  check_float "eligible ptime" 1.0 (Core.Instance.ptime t 0 0);
  check_float "ineligible ptime" infinity (Core.Instance.ptime t 1 0);
  (* class 0 has no job on machine 1, so its setup there is infinite *)
  check_float "setup on wrong machine" infinity
    (Core.Instance.setup_time t 1 0);
  check_float "setup on right machine" 5.0 (Core.Instance.setup_time t 0 0);
  Alcotest.(check bool) "job 0 not eligible on machine 1" false
    (Core.Instance.job_eligible t 1 0);
  Alcotest.(check (list int)) "eligible machines" [ 1 ]
    (Core.Instance.eligible_machines t 1)

let test_instance_unrelated () =
  let t = unrelated_fixture () in
  check_float "finite ptime" 1.0 (Core.Instance.ptime t 0 0);
  check_float "infinite ptime" infinity (Core.Instance.ptime t 0 2);
  Alcotest.(check bool) "eligible" false (Core.Instance.job_eligible t 0 2);
  (* base sizes become minimum finite processing time *)
  check_float "derived size" 1.0 t.Core.Instance.sizes.(1)

let test_instance_setup_matrix () =
  let t =
    Core.Instance.unrelated
      ~setup_matrix:[| [| 1.0; infinity |]; [| 0.5; 2.0 |] |]
      ~p:[| [| 1.0 |]; [| 2.0 |] |]
      ~job_class:[| 1 |] ~setups:[| 9.0; 9.0 |]
      ()
  in
  check_float "matrix setup" 2.0 (Core.Instance.setup_time t 1 1);
  Alcotest.(check bool) "blocked by setup" false
    (Core.Instance.job_eligible t 0 0)

let test_instance_validation () =
  let bad name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  bad "length mismatch" (fun () ->
      Core.Instance.identical ~num_machines:1 ~sizes:[| 1.0 |] ~job_class:[||]
        ~setups:[| 1.0 |]);
  bad "zero machines" (fun () ->
      Core.Instance.identical ~num_machines:0 ~sizes:[||] ~job_class:[||]
        ~setups:[||]);
  bad "negative size" (fun () ->
      Core.Instance.identical ~num_machines:1 ~sizes:[| -1.0 |]
        ~job_class:[| 0 |] ~setups:[| 1.0 |]);
  bad "class out of range" (fun () ->
      Core.Instance.identical ~num_machines:1 ~sizes:[| 1.0 |]
        ~job_class:[| 3 |] ~setups:[| 1.0 |]);
  bad "zero speed" (fun () ->
      Core.Instance.uniform ~speeds:[| 0.0 |] ~sizes:[| 1.0 |]
        ~job_class:[| 0 |] ~setups:[| 1.0 |]);
  bad "ragged matrix" (fun () ->
      Core.Instance.unrelated
        ~p:[| [| 1.0; 2.0 |] |]
        ~job_class:[| 0 |] ~setups:[| 1.0 |]
        ())

let test_scale_setups () =
  let t = uniform_fixture () in
  let t2 = Core.Instance.scale_setups t 2.0 in
  check_float "scaled" 6.0 (Core.Instance.setup_time t2 0 0);
  check_float "original untouched" 3.0 (Core.Instance.setup_time t 0 0)

let test_class_uniform_predicates () =
  let t = uniform_fixture () in
  Alcotest.(check bool) "uniform is class-uniform-restricted" true
    (Core.Instance.restrict_class_uniform t);
  let r_ok =
    Core.Instance.restricted
      ~eligible:[| [| true; true |]; [| false; false |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 0 |] ~setups:[| 1.0 |]
  in
  Alcotest.(check bool) "class-uniform restriction" true
    (Core.Instance.restrict_class_uniform r_ok);
  let r_bad =
    Core.Instance.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 0 |] ~setups:[| 1.0 |]
  in
  Alcotest.(check bool) "non-uniform restriction" false
    (Core.Instance.restrict_class_uniform r_bad);
  let cu =
    Core.Instance.unrelated
      ~p:[| [| 2.0; 2.0; 7.0 |]; [| 3.0; 3.0; 1.0 |] |]
      ~job_class:[| 0; 0; 1 |] ~setups:[| 1.0; 1.0 |]
      ()
  in
  Alcotest.(check bool) "class-uniform ptimes" true
    (Core.Instance.class_uniform_ptimes cu);
  Alcotest.(check bool) "fixture not class-uniform" false
    (Core.Instance.class_uniform_ptimes (unrelated_fixture ()))

let test_induced () =
  let t = uniform_fixture () in
  let sub = Core.Instance.induced t [ 2; 0; 2 ] in
  Alcotest.(check int) "two jobs" 2 (Core.Instance.num_jobs sub);
  Alcotest.(check int) "classes preserved" 2 (Core.Instance.num_classes sub);
  check_float "size of kept job" 4.0 sub.Core.Instance.sizes.(0);
  check_float "size of second kept job" 6.0 sub.Core.Instance.sizes.(1);
  Alcotest.(check int) "class stable" 1 sub.Core.Instance.job_class.(1);
  Alcotest.(check bool) "empty selection rejected" true
    (try
       ignore (Core.Instance.induced t []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "range checked" true
    (try
       ignore (Core.Instance.induced t [ 9 ]);
       false
     with Invalid_argument _ -> true)

let test_append_jobs () =
  let open Core.Instance in
  let t = uniform_fixture () in
  let t' =
    append_jobs t
      [ { nsize = 5.0; nclass = 1; nptimes = None; neligible = None } ]
  in
  Alcotest.(check int) "one more job" 5 (num_jobs t');
  Alcotest.(check int) "classes unchanged" 2 (num_classes t');
  check_float "new job size" 5.0 t'.sizes.(4);
  Alcotest.(check int) "new job class" 1 t'.job_class.(4);
  check_float "fast machine ptime" 2.5 (ptime t' 1 4);
  check_float "old jobs untouched" (ptime t 0 2) (ptime t' 0 2);
  Alcotest.(check int) "original not mutated" 4 (num_jobs t);
  let invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty list rejected" true
    (invalid (fun () -> append_jobs t []));
  Alcotest.(check bool) "unknown class rejected" true
    (invalid (fun () ->
         append_jobs t
           [ { nsize = 1.0; nclass = 9; nptimes = None; neligible = None } ]));
  Alcotest.(check bool) "ptimes rejected off unrelated" true
    (invalid (fun () ->
         append_jobs t
           [
             {
               nsize = 1.0;
               nclass = 0;
               nptimes = Some [| 1.0; 1.0 |];
               neligible = None;
             };
           ]))

let test_append_jobs_matrix_envs () =
  let open Core.Instance in
  let r =
    restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 1 |] ~setups:[| 5.0; 6.0 |]
  in
  let r' =
    append_jobs r
      [
        {
          nsize = 3.0;
          nclass = 0;
          nptimes = None;
          neligible = Some [| false; true |];
        };
        { nsize = 4.0; nclass = 1; nptimes = None; neligible = None };
      ]
  in
  Alcotest.(check int) "restricted grows" 4 (num_jobs r');
  check_float "explicit eligibility" infinity (ptime r' 0 2);
  check_float "explicit eligibility on" 3.0 (ptime r' 1 2);
  check_float "default eligible everywhere" 4.0 (ptime r' 0 3);
  (* appending a class-0 job to machine 1 makes class 0's setup finite
     there: the derived setup view follows the new column *)
  check_float "setup follows new job" 5.0 (setup_time r' 1 0);
  let u = unrelated_fixture () in
  let u' =
    append_jobs u
      [
        {
          nsize = 0.0;
          nclass = 0;
          nptimes = Some [| 7.0; infinity |];
          neligible = None;
        };
      ]
  in
  check_float "ptimes column" 7.0 (ptime u' 0 3);
  check_float "ptimes column inf" infinity (ptime u' 1 3);
  check_float "derived base size" 7.0 u'.sizes.(3);
  let invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unrelated needs ptimes" true
    (invalid (fun () ->
         append_jobs u
           [ { nsize = 1.0; nclass = 0; nptimes = None; neligible = None } ]));
  Alcotest.(check bool) "eligible length checked" true
    (invalid (fun () ->
         append_jobs r
           [
             {
               nsize = 1.0;
               nclass = 0;
               nptimes = None;
               neligible = Some [| true |];
             };
           ]))

let test_induced_restricted () =
  let t =
    Core.Instance.restricted
      ~eligible:[| [| true; false |]; [| false; true |] |]
      ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 1 |] ~setups:[| 5.0; 6.0 |]
  in
  let sub = Core.Instance.induced t [ 1 ] in
  check_float "eligibility follows the job" infinity
    (Core.Instance.ptime sub 0 0);
  check_float "kept machine" 2.0 (Core.Instance.ptime sub 1 0)

(* --- Schedule ---------------------------------------------------------- *)

let test_schedule_loads () =
  let t = uniform_fixture () in
  (* both class-0 jobs on machine 0; both class-1 jobs on machine 1 *)
  let s = Core.Schedule.make t [| 0; 0; 1; 1 |] in
  (* machine 0: jobs 4+2 plus setup 3 -> 9; machine 1: (6+2)/2 + 1/2 = 4.5 *)
  check_float "load 0" 9.0 (Core.Schedule.load s 0);
  check_float "load 1" 4.5 (Core.Schedule.load s 1);
  check_float "makespan" 9.0 (Core.Schedule.makespan s);
  Alcotest.(check int) "setups" 2 (Core.Schedule.num_setups s);
  Alcotest.(check (list int)) "jobs of machine" [ 0; 1 ]
    (Core.Schedule.jobs_of_machine s 0);
  Alcotest.(check (list int)) "classes of machine" [ 1 ]
    (Core.Schedule.classes_of_machine s 1)

let test_schedule_setup_counted_once () =
  let t = uniform_fixture () in
  (* split classes across machines: every machine pays both setups *)
  let s = Core.Schedule.make t [| 0; 1; 0; 1 |] in
  Alcotest.(check int) "setups" 4 (Core.Schedule.num_setups s);
  (* machine 0: 4 + 6 + 3 + 1 = 14 *)
  check_float "load 0" 14.0 (Core.Schedule.load s 0);
  (* machine 1: (2 + 2)/2 + (3 + 1)/2 = 4 *)
  check_float "load 1" 4.0 (Core.Schedule.load s 1)

let test_schedule_validation () =
  let t = unrelated_fixture () in
  Alcotest.(check bool) "ineligible rejected" true
    (try
       ignore (Core.Schedule.make t [| 0; 1; 0 |]);
       false
     with Invalid_argument _ -> true);
  let s = Core.Schedule.make t [| 0; 1; 1 |] in
  Alcotest.(check bool) "valid" true (Core.Schedule.is_valid t s);
  Alcotest.(check bool) "range checked" true
    (try
       ignore (Core.Schedule.make t [| 0; 1; 7 |]);
       false
     with Invalid_argument _ -> true)

let test_schedule_empty_machine () =
  let t = uniform_fixture () in
  let s = Core.Schedule.make t [| 0; 0; 0; 0 |] in
  check_float "empty machine load" 0.0 (Core.Schedule.load s 1);
  (* machine 0 pays both setups: 4+2+6+2 + 3+1 = 18 *)
  check_float "loaded machine" 18.0 (Core.Schedule.load s 0)

(* --- Bounds ------------------------------------------------------------ *)

let test_bounds_uniform () =
  let t = uniform_fixture () in
  (* job_bound: job 0 best on machine 1: (4+3)/2 = 3.5; job 2: (6+1)/2=3.5 *)
  check_float "job bound" 3.5 (Core.Bounds.job_bound t);
  (* volume: (14 + 4) / 3 = 6 *)
  check_float "volume bound" 6.0 (Core.Bounds.volume_bound t);
  check_float "lower bound" 6.0 (Core.Bounds.lower_bound t);
  Alcotest.(check bool) "upper >= lower" true
    (Core.Bounds.naive_upper_bound t >= Core.Bounds.lower_bound t)

let test_bounds_unrelated () =
  let t = unrelated_fixture () in
  (* job 2 must run on machine 1: 5 + 3 = 8 *)
  check_float "job bound" 8.0 (Core.Bounds.job_bound t);
  Alcotest.(check bool) "volume bound positive" true
    (Core.Bounds.volume_bound t > 0.0)

let test_class_bound () =
  (* one class of 4 unit jobs with setup 10 on 4 identical machines:
     spreading pays 4 setups, so OPT = 11; the class bound finds it *)
  let t =
    Core.Instance.identical ~num_machines:4
      ~sizes:[| 1.0; 1.0; 1.0; 1.0 |]
      ~job_class:[| 0; 0; 0; 0 |]
      ~setups:[| 10.0 |]
  in
  check_float "class bound" 11.0 (Core.Bounds.class_bound t);
  check_float "dominates volume" 11.0 (Core.Bounds.lower_bound t);
  (* volume bound alone is much weaker *)
  check_float "volume" 3.5 (Core.Bounds.volume_bound t)

let test_class_bound_restricted () =
  let t =
    Core.Instance.restricted
      ~eligible:[| [| true; true |]; [| true; true |] |]
      ~sizes:[| 4.0; 4.0 |] ~job_class:[| 0; 0 |] ~setups:[| 6.0 |]
  in
  (* min_setup + work/m = 6 + 8/2 = 10 *)
  check_float "restricted class bound" 10.0 (Core.Bounds.class_bound t)

let test_bounds_sandwich_optimal () =
  (* enumerate all schedules of the fixture; bounds must sandwich OPT *)
  let t = uniform_fixture () in
  let best = ref infinity in
  for a = 0 to 1 do
    for b = 0 to 1 do
      for c = 0 to 1 do
        for d = 0 to 1 do
          let s = Core.Schedule.make t [| a; b; c; d |] in
          if Core.Schedule.makespan s < !best then
            best := Core.Schedule.makespan s
        done
      done
    done
  done;
  Alcotest.(check bool) "lower_bound <= OPT" true
    (Core.Bounds.lower_bound t <= !best +. 1e-9);
  Alcotest.(check bool) "OPT <= naive upper" true
    (!best <= Core.Bounds.naive_upper_bound t +. 1e-9)

(* --- Binary search ----------------------------------------------------- *)

let test_binary_search_basic () =
  let target = 7.3 in
  let probe t = if t >= target then Some t else None in
  match
    Core.Binary_search.min_feasible ~lo:1.0 ~hi:100.0 ~rel_tol:0.001 probe
  with
  | None -> Alcotest.fail "expected feasible"
  | Some (t, w) ->
      Alcotest.(check bool) "witness from probe" true (w = t);
      Alcotest.(check bool) "close to target" true
        (t >= target && t <= target *. 1.002)

let test_binary_search_infeasible () =
  let probe _ = None in
  Alcotest.(check bool) "infeasible" true
    (Core.Binary_search.min_feasible ~lo:1.0 ~hi:10.0 ~rel_tol:0.01 probe
    = None)

let test_binary_search_all_feasible () =
  let probe t = Some t in
  match
    Core.Binary_search.min_feasible ~lo:2.0 ~hi:10.0 ~rel_tol:0.01 probe
  with
  | None -> Alcotest.fail "expected feasible"
  | Some (t, _) ->
      Alcotest.(check bool) "converges to lo" true (t <= 2.0 *. 1.02)

let test_binary_search_validation () =
  Alcotest.(check bool) "bad args rejected" true
    (try
       ignore
         (Core.Binary_search.min_feasible ~lo:5.0 ~hi:1.0 ~rel_tol:0.1
            (fun _ -> None));
       false
     with Invalid_argument _ -> true)

let test_binary_search_probe_count () =
  Alcotest.(check bool) "probes bounded" true
    (Core.Binary_search.probes ~lo:1.0 ~hi:1000.0 ~rel_tol:0.01 < 50)

(* --- Instance_io ------------------------------------------------------- *)

let roundtrip name t =
  let text = Core.Instance_io.to_string t in
  let t' = Core.Instance_io.of_string text in
  Alcotest.(check int) (name ^ " jobs") (Core.Instance.num_jobs t)
    (Core.Instance.num_jobs t');
  Alcotest.(check int)
    (name ^ " machines")
    (Core.Instance.num_machines t)
    (Core.Instance.num_machines t');
  for i = 0 to Core.Instance.num_machines t - 1 do
    for j = 0 to Core.Instance.num_jobs t - 1 do
      check_float
        (Printf.sprintf "%s ptime %d %d" name i j)
        (Core.Instance.ptime t i j)
        (Core.Instance.ptime t' i j)
    done;
    for k = 0 to Core.Instance.num_classes t - 1 do
      check_float
        (Printf.sprintf "%s setup %d %d" name i k)
        (Core.Instance.setup_time t i k)
        (Core.Instance.setup_time t' i k)
    done
  done

let test_io_roundtrip_uniform () = roundtrip "uniform" (uniform_fixture ())

let test_io_roundtrip_unrelated () =
  roundtrip "unrelated" (unrelated_fixture ())

let test_io_roundtrip_identical () =
  roundtrip "identical"
    (Core.Instance.identical ~num_machines:3 ~sizes:[| 1.0; 2.5 |]
       ~job_class:[| 0; 1 |] ~setups:[| 0.5; 4.0 |])

let test_io_roundtrip_restricted () =
  roundtrip "restricted"
    (Core.Instance.restricted
       ~eligible:[| [| true; false |]; [| true; true |] |]
       ~sizes:[| 1.0; 2.0 |] ~job_class:[| 0; 1 |] ~setups:[| 1.0; 2.0 |])

let test_io_roundtrip_setup_matrix () =
  roundtrip "setup-matrix"
    (Core.Instance.unrelated
       ~setup_matrix:[| [| 1.0; infinity |]; [| 0.5; 2.0 |] |]
       ~p:[| [| 1.0 |]; [| 2.0 |] |]
       ~job_class:[| 1 |] ~setups:[| 9.0; 9.0 |]
       ())

let test_io_parse_errors () =
  let bad name text =
    Alcotest.(check bool) name true
      (try
         ignore (Core.Instance_io.of_string text);
         false
       with Core.Instance_io.Parse_error _ -> true)
  in
  bad "empty" "";
  bad "unknown keyword" "env identical\nbogus 3\n";
  bad "bad env" "env martian\n";
  bad "bad number" "env identical\nmachines 1\nclasses 1\nsetups x\n";
  bad "missing job_class"
    "env identical\nmachines 1\nclasses 1\nsetups 1\njobs 1\nsizes 1\n";
  bad "wrong row width"
    "env unrelated\nmachines 2\nclasses 1\nsetups 1\njobs 2\n\
     job_class 0 0\nptimes\n1 2\n3\n"

let test_io_structured_errors () =
  let err name text check =
    match Core.Instance_io.of_string_result text with
    | Ok _ -> Alcotest.fail (name ^ ": expected a parse error")
    | Error e -> check e
  in
  (* truncated block: the error names the block's header line and field *)
  err "truncated ptimes"
    "env unrelated\nmachines 3\nclasses 1\nsetups 1\njobs 2\n\
     job_class 0 0\nptimes\n1 2\n"
    (fun e ->
      Alcotest.(check (option int)) "line of header" (Some 7)
        e.Core.Instance_io.line;
      Alcotest.(check (option string)) "field" (Some "ptimes")
        e.Core.Instance_io.field;
      Alcotest.(check bool) "says truncated" true
        (Astring.String.is_infix ~affix:"truncated"
           e.Core.Instance_io.message));
  (* negative times are rejected at the offending line, not deep inside
     the constructor *)
  err "negative setup"
    "env identical\nmachines 1\nclasses 2\nsetups 3 -1\njobs 1\nsizes 1\n\
     job_class 0\n"
    (fun e ->
      Alcotest.(check (option int)) "line" (Some 4) e.Core.Instance_io.line;
      Alcotest.(check (option string)) "field" (Some "setups")
        e.Core.Instance_io.field);
  err "negative size"
    "env identical\nmachines 1\nclasses 1\nsetups 1\njobs 2\nsizes 5 -2\n\
     job_class 0 0\n"
    (fun e ->
      Alcotest.(check (option int)) "line" (Some 6) e.Core.Instance_io.line;
      Alcotest.(check (option string)) "field" (Some "sizes")
        e.Core.Instance_io.field);
  (* out-of-range class id names the job_class line *)
  err "class id out of range"
    "env identical\nmachines 1\nclasses 2\nsetups 1 1\njobs 2\nsizes 1 1\n\
     job_class 0 5\n"
    (fun e ->
      Alcotest.(check (option int)) "line" (Some 7) e.Core.Instance_io.line;
      Alcotest.(check (option string)) "field" (Some "job_class")
        e.Core.Instance_io.field;
      Alcotest.(check bool) "names range" true
        (Astring.String.is_infix ~affix:"out of range"
           e.Core.Instance_io.message));
  (* error_to_string folds line and field into the rendered message *)
  err "rendering"
    "env identical\nmachines 1\nclasses 1\nsetups -9\njobs 1\nsizes 1\n\
     job_class 0\n"
    (fun e ->
      let rendered = Core.Instance_io.error_to_string e in
      Alcotest.(check bool) "has line" true
        (Astring.String.is_infix ~affix:"line 4" rendered);
      Alcotest.(check bool) "has field" true
        (Astring.String.is_infix ~affix:"setups" rendered))

let test_io_comments_and_inf () =
  let t =
    Core.Instance_io.of_string
      "# header\nenv unrelated\nmachines 1 # trailing\nclasses 1\nsetups 2\n\
       jobs 2\njob_class 0 0\nptimes\n1 inf\n"
  in
  check_float "inf parsed" infinity (Core.Instance.ptime t 0 1)

let test_io_file_roundtrip () =
  let t = uniform_fixture () in
  let path = Filename.temp_file "sched" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Core.Instance_io.to_file path t;
      let t' = Core.Instance_io.of_file path in
      check_float "ptime preserved" (Core.Instance.ptime t 1 2)
        (Core.Instance.ptime t' 1 2))

let () =
  Alcotest.run "core"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "identical" `Quick test_instance_identical;
          Alcotest.test_case "restricted" `Quick test_instance_restricted;
          Alcotest.test_case "unrelated" `Quick test_instance_unrelated;
          Alcotest.test_case "setup matrix" `Quick test_instance_setup_matrix;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "scale setups" `Quick test_scale_setups;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "induced restricted" `Quick
            test_induced_restricted;
          Alcotest.test_case "append jobs" `Quick test_append_jobs;
          Alcotest.test_case "append jobs matrix envs" `Quick
            test_append_jobs_matrix_envs;
          Alcotest.test_case "class-uniform predicates" `Quick
            test_class_uniform_predicates;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "loads" `Quick test_schedule_loads;
          Alcotest.test_case "setup counted once" `Quick
            test_schedule_setup_counted_once;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "empty machine" `Quick test_schedule_empty_machine;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "uniform" `Quick test_bounds_uniform;
          Alcotest.test_case "unrelated" `Quick test_bounds_unrelated;
          Alcotest.test_case "class bound" `Quick test_class_bound;
          Alcotest.test_case "class bound restricted" `Quick
            test_class_bound_restricted;
          Alcotest.test_case "sandwich optimal" `Quick
            test_bounds_sandwich_optimal;
        ] );
      ( "binary search",
        [
          Alcotest.test_case "basic" `Quick test_binary_search_basic;
          Alcotest.test_case "infeasible" `Quick test_binary_search_infeasible;
          Alcotest.test_case "all feasible" `Quick
            test_binary_search_all_feasible;
          Alcotest.test_case "validation" `Quick test_binary_search_validation;
          Alcotest.test_case "probe count" `Quick
            test_binary_search_probe_count;
        ] );
      ( "instance io",
        [
          Alcotest.test_case "roundtrip uniform" `Quick
            test_io_roundtrip_uniform;
          Alcotest.test_case "roundtrip unrelated" `Quick
            test_io_roundtrip_unrelated;
          Alcotest.test_case "roundtrip identical" `Quick
            test_io_roundtrip_identical;
          Alcotest.test_case "roundtrip restricted" `Quick
            test_io_roundtrip_restricted;
          Alcotest.test_case "roundtrip setup matrix" `Quick
            test_io_roundtrip_setup_matrix;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Alcotest.test_case "structured errors" `Quick
            test_io_structured_errors;
          Alcotest.test_case "comments and inf" `Quick
            test_io_comments_and_inf;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
        ] );
    ]
