(* Tests for the obs observability layer: counters under domain
   parallelism, span nesting/merge invariants, Chrome-trace golden
   checks, and the pool's rejected-submission counter. *)

module C = Obs.Counter
module P = Parallel.Pool

(* Every test that records events starts from a clean, disabled sink. *)
let with_clean_sink f =
  Obs.Sink.clear ();
  Obs.Sink.disable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ())
    f

let test_counter_basics () =
  let c = C.make "test.basics" in
  let c' = C.make "test.basics" in
  C.reset c;
  C.incr c;
  C.add c' 41;
  Alcotest.(check int) "interned by name" 42 (C.value c);
  Alcotest.(check string) "name" "test.basics" (C.name c);
  Alcotest.(check bool) "find" true (C.find "test.basics" <> None);
  Alcotest.(check bool) "find unknown" true (C.find "test.nope" = None);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.value c)

let test_counter_delta () =
  let c = C.make "test.delta" in
  C.reset c;
  let before = C.snapshot () in
  C.add c 7;
  let moved = C.delta ~before ~after:(C.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "only the moved counter" [ ("test.delta", 7) ]
    (List.filter (fun (n, _) -> n = "test.delta") moved);
  Alcotest.(check bool) "unmoved counters absent" true
    (not (List.exists (fun (n, _) -> n = "test.basics") moved))

let test_counter_hammer () =
  (* 4 domains x 64 tasks x 1000 increments: no lost updates. *)
  let c = C.make "test.hammer" in
  C.reset c;
  let pool = P.create 4 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      ignore
        (P.run pool
           (List.init 64 (fun _ () ->
                for _ = 1 to 1000 do
                  C.incr c
                done))));
  Alcotest.(check int) "no lost updates" 64_000 (C.value c)

let test_gauge () =
  let g = Obs.Gauge.make "test.gauge" in
  Obs.Gauge.set g 0.75;
  Alcotest.(check (float 1e-9)) "value" 0.75 (Obs.Gauge.value g);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.gauge" (Obs.Gauge.snapshot ()))

let test_span_disabled () =
  with_clean_sink (fun () ->
      let r = Obs.Span.with_span "quiet" (fun () -> 7) in
      Alcotest.(check int) "result" 7 r;
      Alcotest.(check int) "no events recorded" 0
        (List.length (Obs.Sink.events ())))

let test_timed () =
  with_clean_sink (fun () ->
      let r, secs = Obs.Span.timed "timed" (fun () -> Unix.sleepf 0.01; 5) in
      Alcotest.(check int) "result" 5 r;
      Alcotest.(check bool) "elapsed measured while disabled" true
        (secs >= 0.005);
      Alcotest.(check int) "but nothing recorded" 0
        (List.length (Obs.Sink.events ())))

let test_span_nesting () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      Obs.Span.with_span "outer" (fun () ->
          Obs.Span.with_span "inner" (fun () -> ());
          Obs.Span.with_span "inner" (fun () -> ()));
      let events = Obs.Sink.events () in
      Alcotest.(check int) "3 spans = 6 events" 6 (List.length events);
      let names =
        List.map
          (fun (e : Obs.Sink.event) ->
            ( e.Obs.Sink.name,
              match e.Obs.Sink.phase with
              | Obs.Sink.Begin -> "B"
              | Obs.Sink.End -> "E"
              | Obs.Sink.Instant -> "i" ))
          events
      in
      Alcotest.(check (list (pair string string)))
        "emission order respects nesting"
        [
          ("outer", "B");
          ("inner", "B");
          ("inner", "E");
          ("inner", "B");
          ("inner", "E");
          ("outer", "E");
        ]
        names;
      let summaries = Obs.Span.summarize events in
      let find name =
        List.find (fun (s : Obs.Span.summary) -> s.Obs.Span.name = name)
          summaries
      in
      Alcotest.(check int) "inner count" 2 (find "inner").Obs.Span.count;
      Alcotest.(check int) "outer count" 1 (find "outer").Obs.Span.count;
      Alcotest.(check bool) "outer total >= inner total" true
        ((find "outer").Obs.Span.total_s >= (find "inner").Obs.Span.total_s))

let test_span_raise_still_closes () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      (try Obs.Span.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      match Obs.Sink.events () with
      | [ b; e ] ->
          Alcotest.(check bool) "B then E" true
            (b.Obs.Sink.phase = Obs.Sink.Begin
            && e.Obs.Sink.phase = Obs.Sink.End)
      | evs ->
          Alcotest.failf "expected exactly B/E, got %d events"
            (List.length evs))

let test_span_merge_across_domains () =
  (* spans recorded on pool workers merge into one timeline, and the pool
     itself contributes a "pool.task" span per task *)
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      let pool = P.create 4 in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () ->
          ignore
            (P.run pool
               (List.init 8 (fun i () ->
                    Obs.Span.with_span "work" (fun () -> i * i)))));
      let summaries = Obs.Span.summarize (Obs.Sink.events ()) in
      let count name =
        match
          List.find_opt
            (fun (s : Obs.Span.summary) -> s.Obs.Span.name = name)
            summaries
        with
        | Some s -> s.Obs.Span.count
        | None -> 0
      in
      Alcotest.(check int) "8 user spans" 8 (count "work");
      Alcotest.(check int) "8 pool.task spans" 8 (count "pool.task");
      (* busy accounting saw every task too *)
      let busy = P.domain_busy_s pool in
      Alcotest.(check bool) "busy time recorded" true
        (Array.fold_left ( +. ) 0.0 busy >= 0.0))

let test_trace_golden () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      Obs.Span.with_span "a" (fun () ->
          Obs.Span.with_span "b" (fun () -> ());
          Obs.Span.instant "mark");
      let text = Obs.Trace.to_string () in
      (match Obs.Trace.validate_string text with
      | Ok n -> Alcotest.(check int) "2 spans + 1 instant = 5 events" 5 n
      | Error msg -> Alcotest.failf "trace did not validate: %s" msg);
      (* file round-trip *)
      let file = Filename.temp_file "test_obs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Obs.Trace.to_file file;
          match Obs.Trace.validate_file file with
          | Ok n -> Alcotest.(check int) "file round-trip" 5 n
          | Error msg -> Alcotest.failf "file did not validate: %s" msg))

let test_trace_validator_rejects () =
  let bad =
    [
      ("truncated", "{\"traceEvents\":[");
      ("not an object", "[1,2,3]");
      ("missing traceEvents", "{\"other\":1}");
      ("events not an array", "{\"traceEvents\":3}");
      ( "unbalanced span",
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0}]}"
      );
      ( "mismatched close",
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0},{\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
      );
    ]
  in
  List.iter
    (fun (label, text) ->
      match Obs.Trace.validate_string text with
      | Ok _ -> Alcotest.failf "%s should not validate" label
      | Error _ -> ())
    bad

let test_pool_rejected_counter () =
  let c = C.make "pool.rejected_submissions" in
  let before = C.value c in
  let pool = P.create 2 in
  P.shutdown pool;
  (match P.run pool [ (fun () -> 1) ] with
  | _ -> Alcotest.fail "run after shutdown should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the pool size" true
        (Astring.String.is_infix ~affix:"2 domains" msg);
      Alcotest.(check bool) "message names the queue depth" true
        (Astring.String.is_infix ~affix:"queue depth" msg));
  Alcotest.(check int) "counter bumped" (before + 1) (C.value c)

let test_report_tables () =
  let c = C.make "test.report" in
  C.reset c;
  let before = C.snapshot () in
  C.add c 3;
  let delta = Obs.Report.delta_table ~before in
  Alcotest.(check bool) "delta table lists the counter" true
    (Astring.String.is_infix ~affix:"test.report"
       (Stats.Table.to_string delta));
  let full = Stats.Table.to_string (Obs.Report.to_table ()) in
  Alcotest.(check bool) "full table lists the counter" true
    (Astring.String.is_infix ~affix:"test.report" full)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "delta" `Quick test_counter_delta;
          Alcotest.test_case "4-domain hammer" `Quick test_counter_hammer;
        ] );
      ("gauge", [ Alcotest.test_case "set/get" `Quick test_gauge ]);
      ( "span",
        [
          Alcotest.test_case "disabled = silent" `Quick test_span_disabled;
          Alcotest.test_case "timed" `Quick test_timed;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on raise" `Quick
            test_span_raise_still_closes;
          Alcotest.test_case "merge across domains" `Quick
            test_span_merge_across_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden round-trip" `Quick test_trace_golden;
          Alcotest.test_case "validator rejects" `Quick
            test_trace_validator_rejects;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pool rejection counter" `Quick
            test_pool_rejected_counter;
          Alcotest.test_case "report tables" `Quick test_report_tables;
        ] );
    ]
