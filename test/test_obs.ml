(* Tests for the obs observability layer: counters under domain
   parallelism, span nesting/merge invariants, Chrome-trace golden
   checks, and the pool's rejected-submission counter. *)

module C = Obs.Counter
module P = Parallel.Pool

(* Every test that records events starts from a clean, disabled sink. *)
let with_clean_sink f =
  Obs.Sink.clear ();
  Obs.Sink.disable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.clear ())
    f

let test_counter_basics () =
  let c = C.make "test.basics" in
  let c' = C.make "test.basics" in
  C.reset c;
  C.incr c;
  C.add c' 41;
  Alcotest.(check int) "interned by name" 42 (C.value c);
  Alcotest.(check string) "name" "test.basics" (C.name c);
  Alcotest.(check bool) "find" true (C.find "test.basics" <> None);
  Alcotest.(check bool) "find unknown" true (C.find "test.nope" = None);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.value c)

let test_counter_delta () =
  let c = C.make "test.delta" in
  C.reset c;
  let before = C.snapshot () in
  C.add c 7;
  let moved = C.delta ~before ~after:(C.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "only the moved counter" [ ("test.delta", 7) ]
    (List.filter (fun (n, _) -> n = "test.delta") moved);
  Alcotest.(check bool) "unmoved counters absent" true
    (not (List.exists (fun (n, _) -> n = "test.basics") moved))

let test_counter_hammer () =
  (* 4 domains x 64 tasks x 1000 increments: no lost updates. *)
  let c = C.make "test.hammer" in
  C.reset c;
  let pool = P.create 4 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      ignore
        (P.run pool
           (List.init 64 (fun _ () ->
                for _ = 1 to 1000 do
                  C.incr c
                done))));
  Alcotest.(check int) "no lost updates" 64_000 (C.value c)

let test_gauge () =
  let g = Obs.Gauge.make "test.gauge" in
  Obs.Gauge.set g 0.75;
  Alcotest.(check (float 1e-9)) "value" 0.75 (Obs.Gauge.value g);
  Alcotest.(check bool) "in snapshot" true
    (List.mem_assoc "test.gauge" (Obs.Gauge.snapshot ()))

let test_span_disabled () =
  with_clean_sink (fun () ->
      let r = Obs.Span.with_span "quiet" (fun () -> 7) in
      Alcotest.(check int) "result" 7 r;
      Alcotest.(check int) "no events recorded" 0
        (List.length (Obs.Sink.events ())))

let test_timed () =
  with_clean_sink (fun () ->
      let r, secs = Obs.Span.timed "timed" (fun () -> Unix.sleepf 0.01; 5) in
      Alcotest.(check int) "result" 5 r;
      Alcotest.(check bool) "elapsed measured while disabled" true
        (secs >= 0.005);
      Alcotest.(check int) "but nothing recorded" 0
        (List.length (Obs.Sink.events ())))

let test_span_nesting () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      Obs.Span.with_span "outer" (fun () ->
          Obs.Span.with_span "inner" (fun () -> ());
          Obs.Span.with_span "inner" (fun () -> ()));
      let events = Obs.Sink.events () in
      Alcotest.(check int) "3 spans = 6 events" 6 (List.length events);
      let names =
        List.map
          (fun (e : Obs.Sink.event) ->
            ( e.Obs.Sink.name,
              match e.Obs.Sink.phase with
              | Obs.Sink.Begin -> "B"
              | Obs.Sink.End -> "E"
              | Obs.Sink.Instant -> "i" ))
          events
      in
      Alcotest.(check (list (pair string string)))
        "emission order respects nesting"
        [
          ("outer", "B");
          ("inner", "B");
          ("inner", "E");
          ("inner", "B");
          ("inner", "E");
          ("outer", "E");
        ]
        names;
      let summaries = Obs.Span.summarize events in
      let find name =
        List.find (fun (s : Obs.Span.summary) -> s.Obs.Span.name = name)
          summaries
      in
      Alcotest.(check int) "inner count" 2 (find "inner").Obs.Span.count;
      Alcotest.(check int) "outer count" 1 (find "outer").Obs.Span.count;
      Alcotest.(check bool) "outer total >= inner total" true
        ((find "outer").Obs.Span.total_s >= (find "inner").Obs.Span.total_s))

let test_span_raise_still_closes () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      (try Obs.Span.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      match Obs.Sink.events () with
      | [ b; e ] ->
          Alcotest.(check bool) "B then E" true
            (b.Obs.Sink.phase = Obs.Sink.Begin
            && e.Obs.Sink.phase = Obs.Sink.End)
      | evs ->
          Alcotest.failf "expected exactly B/E, got %d events"
            (List.length evs))

let test_span_merge_across_domains () =
  (* spans recorded on pool workers merge into one timeline, and the pool
     itself contributes a "pool.task" span per task *)
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      let pool = P.create 4 in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () ->
          ignore
            (P.run pool
               (List.init 8 (fun i () ->
                    Obs.Span.with_span "work" (fun () -> i * i)))));
      let summaries = Obs.Span.summarize (Obs.Sink.events ()) in
      let count name =
        match
          List.find_opt
            (fun (s : Obs.Span.summary) -> s.Obs.Span.name = name)
            summaries
        with
        | Some s -> s.Obs.Span.count
        | None -> 0
      in
      Alcotest.(check int) "8 user spans" 8 (count "work");
      Alcotest.(check int) "8 pool.task spans" 8 (count "pool.task");
      (* busy accounting saw every task too *)
      let busy = P.domain_busy_s pool in
      Alcotest.(check bool) "busy time recorded" true
        (Array.fold_left ( +. ) 0.0 busy >= 0.0))

let test_trace_golden () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      Obs.Span.with_span "a" (fun () ->
          Obs.Span.with_span "b" (fun () -> ());
          Obs.Span.instant "mark");
      let text = Obs.Trace.to_string () in
      (match Obs.Trace.validate_string text with
      | Ok n -> Alcotest.(check int) "2 spans + 1 instant = 5 events" 5 n
      | Error msg -> Alcotest.failf "trace did not validate: %s" msg);
      (* file round-trip *)
      let file = Filename.temp_file "test_obs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          Obs.Trace.to_file file;
          match Obs.Trace.validate_file file with
          | Ok n -> Alcotest.(check int) "file round-trip" 5 n
          | Error msg -> Alcotest.failf "file did not validate: %s" msg))

let test_trace_validator_rejects () =
  let bad =
    [
      ("truncated", "{\"traceEvents\":[");
      ("not an object", "[1,2,3]");
      ("missing traceEvents", "{\"other\":1}");
      ("events not an array", "{\"traceEvents\":3}");
      ( "unbalanced span",
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0}]}"
      );
      ( "mismatched close",
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0},{\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
      );
    ]
  in
  List.iter
    (fun (label, text) ->
      match Obs.Trace.validate_string text with
      | Ok _ -> Alcotest.failf "%s should not validate" label
      | Error _ -> ())
    bad

let test_trace_merge () =
  (* two single-process traces with wall-clock anchors merge onto one
     timeline: pids are remapped per input, each input gets a
     process_name metadata record, and timestamps rebase against the
     earliest anchor *)
  let mk ~t0 ~name =
    Printf.sprintf
      "{\"traceEvents\":[\n\
       {\"name\":\"%s\",\"ph\":\"B\",\"ts\":0.0,\"pid\":1,\"tid\":0},\n\
       {\"name\":\"%s\",\"ph\":\"E\",\"ts\":50.0,\"pid\":1,\"tid\":0}\n\
       ],\"t0_us\":%.1f,\"displayTimeUnit\":\"ms\"}" name name t0
  in
  match
    Obs.Trace.merge_strings
      [ ("client", mk ~t0:1000.0 ~name:"c"); ("server", mk ~t0:1010.0 ~name:"s") ]
  with
  | Error msg -> Alcotest.failf "merge failed: %s" msg
  | Ok merged -> (
      (match Obs.Trace.validate_string merged with
      | Ok n ->
          (* 2 events per input + 2 process_name metadata records *)
          Alcotest.(check int) "merged event count" 6 n
      | Error msg -> Alcotest.failf "merged trace invalid: %s" msg);
      let has affix =
        Alcotest.(check bool) affix true
          (Astring.String.is_infix ~affix merged)
      in
      has "\"process_name\"";
      has "{\"name\":\"client\"}";
      has "{\"name\":\"server\"}";
      (* the later anchor's events shifted by the 10us offset *)
      has "\"ts\":10,\"pid\":2";
      has "\"ts\":60,\"pid\":2";
      (* both inputs claimed pid 1; the merge separates them *)
      has "\"pid\":2";
      (* the merged anchor is the earliest input's *)
      has "\"t0_us\":1000.000";
      match Obs.Trace.merge_strings [ ("bad", "not json") ] with
      | Ok _ -> Alcotest.fail "garbage should not merge"
      | Error msg ->
          Alcotest.(check bool) "error names the input" true
            (Astring.String.is_infix ~affix:"bad" msg))

(* --- phase attribution ---------------------------------------------------- *)

let test_phase_records () =
  Obs.Phase.clear ();
  let r =
    Obs.Sink.with_ctx "ph-t1" (fun () ->
        Obs.Span.phase ~detail:"outer" "ph.a" (fun () ->
            Obs.Span.phase
              ~result_detail:(fun v -> Printf.sprintf "got=%d" v)
              "ph.b"
              (fun () -> 41 + 1)))
  in
  Alcotest.(check int) "phase is transparent" 42 r;
  (* recorded even though the sink was never enabled *)
  match Obs.Phase.recent ~ctx:"ph-t1" () with
  | [ a; b ] ->
      Alcotest.(check string) "outer first (start order)" "ph.a"
        a.Obs.Phase.name;
      Alcotest.(check string) "outer detail" "outer" a.Obs.Phase.detail;
      Alcotest.(check string) "result_detail applied" "got=42"
        b.Obs.Phase.detail;
      Alcotest.(check (option int))
        "parent link" (Some a.Obs.Phase.id) b.Obs.Phase.parent;
      Alcotest.(check (option int)) "root has no parent" None a.Obs.Phase.parent;
      Alcotest.(check int) "root depth" 0 (Obs.Phase.depth [ a; b ] a);
      Alcotest.(check int) "child depth" 1 (Obs.Phase.depth [ a; b ] b);
      Alcotest.(check bool) "durations nest" true
        (a.Obs.Phase.dur_us >= b.Obs.Phase.dur_us)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_phase_raise_and_filter () =
  Obs.Phase.clear ();
  Obs.Sink.with_ctx "ph-t2" (fun () ->
      try
        Obs.Span.phase ~detail:"armed"
          ~result_detail:(fun _ -> "never")
          "ph.boom"
          (fun () -> failwith "x")
      with Failure _ -> ());
  Obs.Sink.with_ctx "ph-other" (fun () ->
      Obs.Span.phase "ph.noise" (fun () -> ()));
  (match Obs.Phase.recent ~ctx:"ph-t2" () with
  | [ r ] ->
      Alcotest.(check string) "recorded on raise" "ph.boom" r.Obs.Phase.name;
      Alcotest.(check string) "detail survives the raise" "armed"
        r.Obs.Phase.detail
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
  Alcotest.(check int) "recent filters by ctx" 1
    (List.length (Obs.Phase.recent ~ctx:"ph-other" ()))

let test_phase_ring_bound () =
  Obs.Phase.clear ();
  Obs.Phase.set_capacity 8;
  Fun.protect
    ~finally:(fun () ->
      Obs.Phase.set_capacity Obs.Phase.default_capacity;
      Obs.Phase.clear ())
    (fun () ->
      for i = 1 to 20 do
        Obs.Span.phase ~detail:(string_of_int i) "ph.ring" (fun () -> ())
      done;
      match Obs.Phase.snapshot () with
      | rs ->
          Alcotest.(check int) "ring keeps the newest 8" 8 (List.length rs);
          Alcotest.(check (list string))
            "oldest evicted, order kept"
            (List.init 8 (fun i -> string_of_int (13 + i)))
            (List.map (fun r -> r.Obs.Phase.detail) rs))

let test_histogram_exemplars () =
  let module H = Obs.Histogram in
  let h = H.make "test.hist.exemplar" in
  H.reset h;
  H.observe h 5.0;
  Alcotest.(check int) "untraced observation leaves no exemplar" 0
    (List.length (H.merged h).H.exemplars);
  Obs.Sink.with_ctx "ex-1" (fun () -> H.observe h 5.0);
  Obs.Sink.with_ctx "ex-2" (fun () -> H.observe h 5.0);
  Obs.Sink.with_ctx "ex-3" (fun () -> H.observe h 5000.0);
  (match (H.merged h).H.exemplars with
  | [ (_, a); (_, b) ] ->
      (* one slot per bucket; the newest traced observation wins *)
      Alcotest.(check string) "bucket slot replaced" "ex-2" a.H.e_trace;
      Alcotest.(check (float 1e-9)) "value kept" 5.0 a.H.e_value;
      Alcotest.(check string) "second bucket" "ex-3" b.H.e_trace;
      Alcotest.(check bool) "timestamp set" true (a.H.e_ts_us > 0.0)
  | ex -> Alcotest.failf "expected 2 exemplars, got %d" (List.length ex));
  (* the Prometheus exposition renders them as OpenMetrics suffixes *)
  let expo = Obs.Expo.prometheus () in
  Alcotest.(check bool) "exemplar in exposition" true
    (Astring.String.is_infix ~affix:"# {trace_id=\"ex-3\"}" expo);
  H.reset h;
  Alcotest.(check int) "reset drops exemplars" 0
    (List.length (H.merged h).H.exemplars)

let test_pool_rejected_counter () =
  let c = C.make "pool.rejected_submissions" in
  let before = C.value c in
  let pool = P.create 2 in
  P.shutdown pool;
  (match P.run pool [ (fun () -> 1) ] with
  | _ -> Alcotest.fail "run after shutdown should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the pool size" true
        (Astring.String.is_infix ~affix:"2 domains" msg);
      Alcotest.(check bool) "message names the queue depth" true
        (Astring.String.is_infix ~affix:"queue depth" msg));
  Alcotest.(check int) "counter bumped" (before + 1) (C.value c)

let test_counter_delta_dropped () =
  (* counters present in [before] but missing from [after] (a reset
     registry) must show up as negative deltas, not vanish *)
  let d = C.delta ~before:[ ("gone", 5); ("still", 2) ] ~after:[ ("still", 2) ] in
  Alcotest.(check (list (pair string int))) "negative delta" [ ("gone", -5) ] d;
  let d2 =
    C.delta
      ~before:[ ("b", 3); ("a", 1) ]
      ~after:[ ("a", 4); ("c", 2) ]
  in
  Alcotest.(check (list (pair string int)))
    "moved, dropped and new, sorted"
    [ ("a", 3); ("b", -3); ("c", 2) ]
    d2;
  Alcotest.(check (list (pair string int)))
    "zero counters never report as dropped" []
    (C.delta ~before:[ ("zero", 0) ] ~after:[])

(* --- histograms ---------------------------------------------------------- *)

module H = Obs.Histogram

let test_histogram_basics () =
  let h = H.make "test.hist.basics" in
  H.reset h;
  let h' = H.make "test.hist.basics" in
  List.iter (H.observe h) [ 0.5; 1.0; 2.0; 100.0; 1e15 ];
  H.observe h' 3.0;
  let s = H.merged h in
  Alcotest.(check string) "name" "test.hist.basics" s.H.sname;
  Alcotest.(check int) "interned: both handles feed one histogram" 6 s.H.count;
  Alcotest.(check (float 1e-3)) "sum" (0.5 +. 1.0 +. 2.0 +. 100.0 +. 1e15 +. 3.0) s.H.sum;
  Alcotest.(check (float 1e-3)) "exact max" 1e15 s.H.max_value;
  (* v <= 1 lands in bucket 0 (ub 1.0); 1e15 overflows to the +inf bucket *)
  (match s.H.buckets with
  | (ub0, c0) :: _ ->
      Alcotest.(check (float 0.0)) "first bucket ub" 1.0 ub0;
      Alcotest.(check int) "two values <= 1" 2 c0
  | [] -> Alcotest.fail "no buckets");
  (match List.rev s.H.buckets with
  | (ub_last, c_last) :: _ ->
      Alcotest.(check bool) "overflow ub is +inf" true (ub_last = infinity);
      Alcotest.(check int) "one overflowed value" 1 c_last
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check bool) "find" true (H.find "test.hist.basics" <> None);
  Alcotest.(check bool) "find unknown" true (H.find "test.hist.nope" = None);
  H.reset h;
  Alcotest.(check int) "reset" 0 (H.merged h).H.count

let test_histogram_quantile_bound () =
  (* the histogram's quantile estimate must sit within the bucket
     relative-error bound of the exact sample quantile: for true value v
     in (1, 1e12), v <= estimate < ratio * v *)
  let h = H.make "test.hist.bound" in
  H.reset h;
  let ratio = H.ratio h in
  let rng = Workloads.Rng.create 42 in
  let n = 1000 in
  let samples =
    Array.init n (fun _ ->
        (* log-uniform over (1, 1e9): exercises many buckets *)
        Float.exp (Workloads.Rng.float rng *. log 1e9))
  in
  Array.iter (H.observe h) samples;
  let s = H.merged h in
  Alcotest.(check int) "count" n s.H.count;
  List.iter
    (fun q ->
      let exact = Stats.quantile samples q in
      let est = H.quantile s q in
      (* interpolation vs order-statistic off-by-one is < one sample
         apart; one extra ratio factor absorbs it *)
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f: estimate %.1f >= exact/ratio %.1f" q est
           (exact /. ratio))
        true
        (est >= exact /. ratio);
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f: estimate %.1f < exact*ratio^2 %.1f" q est
           (exact *. ratio *. ratio))
        true
        (est < exact *. ratio *. ratio))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  (* q=1.0 through the overflow path: the tracked max is exact *)
  H.observe h 1e14;
  let s = H.merged h in
  Alcotest.(check (float 1e-3)) "overflow quantile reports exact max" 1e14
    (H.quantile s 1.0)

let test_histogram_hammer () =
  (* 4 pool domains x 64 tasks x 500 observations: merged snapshot loses
     nothing even though every domain records into its own shard *)
  let h = H.make "test.hist.hammer" in
  H.reset h;
  let pool = P.create 4 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      ignore
        (P.run pool
           (List.init 64 (fun i () ->
                for j = 1 to 500 do
                  H.observe h (float_of_int ((i * 500) + j))
                done))));
  let s = H.merged h in
  Alcotest.(check int) "no lost observations" 32_000 s.H.count;
  Alcotest.(check (float 1e-3)) "exact max survives the merge" 32_000.0
    s.H.max_value;
  Alcotest.(check bool) "shards of dead domains persist" true
    ((H.merged h).H.count = 32_000)

(* --- labeled families ---------------------------------------------------- *)

module L = Obs.Labeled

let test_labeled () =
  let f = L.family "test.labeled.requests" ~label:"status" in
  let ok = L.cell f "ok" and err = L.cell f "error" in
  L.incr ok;
  L.incr ok;
  L.add err 3;
  Alcotest.(check int) "ok" 2 (L.value ok);
  Alcotest.(check int) "error" 3 (L.value err);
  let f' = L.family "test.labeled.requests" ~label:"status" in
  L.incr (L.cell f' "ok");
  Alcotest.(check int) "family interned by name" 3 (L.value ok);
  (match L.family "test.labeled.requests" ~label:"other" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "label-key mismatch should raise");
  let samples =
    List.filter
      (fun (s : L.sample) -> s.L.metric = "test.labeled.requests")
      (L.snapshot ())
  in
  Alcotest.(check (list (pair string int)))
    "snapshot sorted by label value"
    [ ("error", 3); ("ok", 3) ]
    (List.map (fun (s : L.sample) -> (s.L.label_value, s.L.value)) samples)

(* --- exposition ---------------------------------------------------------- *)

let test_expo_prometheus () =
  let c = C.make "test.expo.total" in
  C.reset c;
  C.add c 5;
  let f = L.family "test.expo.requests" ~label:"status" in
  L.add (L.cell f "ok") 7;
  let h = H.make "test.expo.latency_us" in
  H.reset h;
  List.iter (H.observe h) [ 0.5; 10.0; 1e13 ];
  let text = Obs.Expo.prometheus () in
  let has affix = Astring.String.is_infix ~affix text in
  Alcotest.(check bool) "sanitized counter" true
    (has "# TYPE test_expo_total counter\ntest_expo_total 5");
  Alcotest.(check bool) "labeled sample" true
    (has "test_expo_requests{status=\"ok\"} 7");
  Alcotest.(check bool) "histogram type line" true
    (has "# TYPE test_expo_latency_us histogram");
  Alcotest.(check bool) "first bucket" true
    (has "test_expo_latency_us_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "+Inf bucket is cumulative" true
    (has "test_expo_latency_us_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "count" true (has "test_expo_latency_us_count 3");
  Alcotest.(check string) "sanitize" "a_b:c_1_"
    (Obs.Expo.sanitize "a.b:c-1%")

let test_expo_json () =
  let h = H.make "test.expo.json_us" in
  H.reset h;
  List.iter (H.observe h) [ 2.0; 4.0; 8.0 ];
  let text = Obs.Expo.json () in
  let has affix = Astring.String.is_infix ~affix text in
  Alcotest.(check bool) "histogram object" true
    (has "\"name\": \"test.expo.json_us\"");
  Alcotest.(check bool) "count field" true (has "\"count\": 3");
  List.iter
    (fun (label, _) ->
      Alcotest.(check bool) (label ^ " present") true
        (has (Printf.sprintf "\"%s\": " label)))
    Obs.Expo.quantile_points;
  let records =
    Obs.Expo.bench_records_json
      [
        {
          Obs.Expo.bname = "r1";
          iterations = 10;
          wall_ns = 1000.0;
          percentiles = [ ("p50_us", 12.0) ];
          counters = [ ("c", 3) ];
          trace_ids = [ ("slowest", "lg1.7") ];
        };
        {
          Obs.Expo.bname = "r2";
          iterations = 5;
          wall_ns = 500.0;
          percentiles = [];
          counters = [];
          trace_ids = [];
        };
      ]
  in
  let hasr affix = Astring.String.is_infix ~affix records in
  Alcotest.(check bool) "ns_per_iter derived" true
    (hasr "\"ns_per_iter\": 100");
  Alcotest.(check bool) "percentiles block" true
    (hasr "\"percentiles\": {\"p50_us\": 12}");
  Alcotest.(check bool) "trace_ids block" true
    (hasr "\"trace_ids\": {\"slowest\": \"lg1.7\"}");
  Alcotest.(check bool) "empty trace_ids omitted" true
    (not (hasr "\"trace_ids\": {}"));
  Alcotest.(check bool) "empty percentiles omitted" true
    (not (hasr "\"name\": \"r2\", \"iterations\": 5, \"wall_ns\": 500, \
                \"ns_per_iter\": 100, \"percentiles\""))

let test_expo_empty_histogram () =
  (* a registered-but-never-observed histogram must still appear in both
     expositions: count 0 in Prometheus, null percentiles in JSON — and
     rendering it must not raise (Histogram.quantile does on empty) *)
  let h = H.make "test.expo.empty_us" in
  H.reset h;
  let text = Obs.Expo.prometheus () in
  let has affix = Astring.String.is_infix ~affix text in
  Alcotest.(check bool) "type line" true
    (has "# TYPE test_expo_empty_us histogram");
  Alcotest.(check bool) "+Inf bucket at zero" true
    (has "test_expo_empty_us_bucket{le=\"+Inf\"} 0");
  Alcotest.(check bool) "zero sum" true (has "test_expo_empty_us_sum 0");
  Alcotest.(check bool) "zero count" true (has "test_expo_empty_us_count 0");
  let js = Obs.Expo.json () in
  Alcotest.(check bool) "json object present" true
    (Astring.String.is_infix ~affix:"\"name\": \"test.expo.empty_us\", \"count\": 0"
       js);
  (* each histogram renders on its own line; the empty one must carry
     null percentiles and an empty bucket list *)
  let obj =
    match
      List.find_opt
        (fun l -> Astring.String.is_infix ~affix:"test.expo.empty_us" l)
        (String.split_on_char '\n' js)
    with
    | Some l -> l
    | None -> Alcotest.fail "empty histogram missing from json"
  in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true
        (Astring.String.is_infix ~affix obj))
    [ "\"p50\": null"; "\"p90\": null"; "\"p99\": null"; "\"buckets\": []" ]

let test_slo_burn_rate () =
  (* 90% good traffic against a 90% target burns the error budget at
     exactly 1.0x on every window *)
  Obs.Slo.clear ();
  let f = L.family "test.slo.requests" ~label:"status" in
  Obs.Slo.register ~name:"test-availability" ~target:0.9
    (Obs.Slo.Availability
       { family = "test.slo.requests"; good_values = [ "ok" ] });
  Obs.Slo.sample ();
  L.add (L.cell f "ok") 9;
  L.add (L.cell f "error") 1;
  Obs.Slo.sample ();
  let reports = Obs.Slo.reports () in
  Alcotest.(check int) "one report per window" (List.length Obs.Slo.windows)
    (List.length reports);
  List.iter
    (fun (r : Obs.Slo.report) ->
      Alcotest.(check string) "name" "test-availability" r.Obs.Slo.rname;
      Alcotest.(check (float 1e-9)) "good" 9.0 r.Obs.Slo.good;
      Alcotest.(check (float 1e-9)) "total" 10.0 r.Obs.Slo.total;
      Alcotest.(check (float 1e-9)) "ratio" 0.9 r.Obs.Slo.ratio;
      Alcotest.(check (float 1e-9)) "burn" 1.0 r.Obs.Slo.burn)
    reports;
  (* prometheus exposition carries the burn-rate series *)
  let text = Obs.Expo.prometheus () in
  Alcotest.(check bool) "slo_burn_rate series" true
    (Astring.String.is_infix
       ~affix:"slo_burn_rate{objective=\"test-availability\",window=\"5m\"}"
       text);
  Obs.Slo.clear ()

(* --- request-id context -------------------------------------------------- *)

let test_sink_ctx () =
  with_clean_sink (fun () ->
      Obs.Sink.enable ();
      Alcotest.(check bool) "no ambient ctx" true
        (Obs.Sink.current_ctx () = None);
      Obs.Sink.with_ctx "r42" (fun () ->
          Alcotest.(check (option string)) "ctx visible" (Some "r42")
            (Obs.Sink.current_ctx ());
          Obs.Span.with_span "outer" (fun () ->
              Obs.Span.with_span "inner" (fun () -> ())));
      Obs.Span.instant "after";
      let tagged, untagged =
        List.partition
          (fun (e : Obs.Sink.event) -> e.Obs.Sink.ctx = Some "r42")
          (Obs.Sink.events ())
      in
      Alcotest.(check int) "both spans tagged" 4 (List.length tagged);
      Alcotest.(check int) "event outside with_ctx untagged" 1
        (List.length untagged);
      (* nested ctx restores the outer one, even on raise *)
      Obs.Sink.with_ctx "a" (fun () ->
          (try Obs.Sink.with_ctx "b" (fun () -> failwith "x")
           with Failure _ -> ());
          Alcotest.(check (option string)) "restored after raise" (Some "a")
            (Obs.Sink.current_ctx ()));
      let text = Obs.Trace.to_string () in
      Alcotest.(check bool) "trace carries the request id" true
        (Astring.String.is_infix ~affix:"\"args\":{\"req\":\"r42\"}" text);
      match Obs.Trace.validate_string text with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace with args did not validate: %s" msg)

(* --- flight recorder ------------------------------------------------------ *)

module E = Obs.Event

(* Every recorder test starts from empty rings at the default Info
   threshold and restores both on the way out. *)
let with_clean_recorder f =
  E.set_level E.Info;
  E.clear ();
  Fun.protect
    ~finally:(fun () ->
      E.set_level E.Info;
      E.set_capacity E.default_capacity;
      E.clear ())
    f

let test_event_basics () =
  with_clean_recorder (fun () ->
      E.emit "first" [ ("n", E.Int 3); ("label", E.Str "a\"b") ];
      Obs.Sink.with_ctx "r7" (fun () ->
          E.emit "second" [ ("x", E.Float 1.5); ("flag", E.Bool true) ]);
      match E.snapshot () with
      | [ first; second ] ->
          Alcotest.(check string) "name" "first" first.E.name;
          Alcotest.(check (option string)) "no ctx outside with_ctx" None
            first.E.ctx;
          Alcotest.(check (option string)) "ctx captured" (Some "r7")
            second.E.ctx;
          Alcotest.(check bool) "timestamps ordered" true
            (first.E.ts_us <= second.E.ts_us);
          List.iter
            (fun e ->
              let line = E.to_json_line e in
              match Obs.Trace.check_json line with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.failf "line %S is not valid JSON: %s" line msg)
            [ first; second ];
          Alcotest.(check bool) "req rendered" true
            (Astring.String.is_infix ~affix:"\"req\":\"r7\""
               (E.to_json_line second));
          Alcotest.(check bool) "escaped field value" true
            (Astring.String.is_infix ~affix:"a\\\"b" (E.to_json_line first))
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_event_levels () =
  with_clean_recorder (fun () ->
      E.emit ~level:E.Debug "too.quiet" [];
      E.emit "kept.info" [];
      E.emit ~level:E.Warn "kept.warn" [];
      Alcotest.(check (list string))
        "debug filtered at the default threshold"
        [ "kept.info"; "kept.warn" ]
        (List.map (fun e -> e.E.name) (E.snapshot ()));
      Alcotest.(check bool) "enabled reflects threshold" true
        ((not (E.enabled E.Debug)) && E.enabled E.Info);
      E.set_level E.Debug;
      E.emit ~level:E.Debug "now.audible" [];
      Alcotest.(check int) "debug recorded after set_level" 3
        (List.length (E.snapshot ()));
      (* recent composes the level floor and the count cap *)
      Alcotest.(check (list string)) "recent filters by level"
        [ "kept.warn" ]
        (List.map
           (fun e -> e.E.name)
           (E.recent ~min_level:E.Warn ()));
      Alcotest.(check (list string)) "recent keeps the newest"
        [ "kept.warn"; "now.audible" ]
        (List.map (fun e -> e.E.name) (E.recent ~count:2 ())))

let test_event_wraparound () =
  with_clean_recorder (fun () ->
      E.set_capacity 8;
      for i = 1 to 20 do
        E.emit "tick" [ ("i", E.Int i) ]
      done;
      let evs = E.snapshot () in
      Alcotest.(check int) "ring keeps exactly its capacity" 8
        (List.length evs);
      Alcotest.(check (list int)) "and it is the newest 8, oldest first"
        [ 13; 14; 15; 16; 17; 18; 19; 20 ]
        (List.map
           (fun e ->
             match e.E.fields with
             | [ ("i", E.Int i) ] -> i
             | _ -> Alcotest.fail "unexpected fields")
           evs))

let test_event_hammer () =
  (* 4 pool domains x 64 tasks x 50 events, mirroring the histogram
     shard hammer: every event survives in some domain's ring (capacity
     is ample), every dump line is valid JSON, and each domain's
     sequence numbers come back strictly increasing *)
  with_clean_recorder (fun () ->
      E.set_capacity 4096;
      let pool = P.create 4 in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () ->
          ignore
            (P.run pool
               (List.init 64 (fun i () ->
                    for j = 1 to 50 do
                      E.emit "hammer" [ ("task", E.Int i); ("j", E.Int j) ]
                    done))));
      let evs = E.snapshot () in
      Alcotest.(check int) "no lost events" 3200 (List.length evs);
      List.iter
        (fun e ->
          match Obs.Trace.check_json (E.to_json_line e) with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "invalid JSON line: %s" msg)
        evs;
      let last_seq : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          (match Hashtbl.find_opt last_seq e.E.domain with
          | Some prev ->
              if e.E.seq <= prev then
                Alcotest.failf
                  "domain %d: seq %d after %d — merge broke per-domain order"
                  e.E.domain e.E.seq prev
          | None -> ());
          Hashtbl.replace last_seq e.E.domain e.E.seq)
        evs)

let test_event_json_sink () =
  with_clean_recorder (fun () ->
      let file = Filename.temp_file "test_event_sink" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          E.set_json_sink None;
          Sys.remove file)
        (fun () ->
          let oc = open_out file in
          E.set_json_sink (Some oc);
          E.emit "mirrored" [ ("k", E.Str "v") ];
          E.emit ~level:E.Debug "filtered" [];
          E.set_json_sink None;
          close_out oc;
          let ic = open_in file in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          match List.rev !lines with
          | [ line ] ->
              Alcotest.(check bool) "mirrored event on the sink" true
                (Astring.String.is_infix ~affix:"\"name\":\"mirrored\"" line);
              Alcotest.(check bool) "line is valid JSON" true
                (Obs.Trace.check_json line = Ok ())
          | ls -> Alcotest.failf "expected 1 sink line, got %d" (List.length ls)))

(* --- memprof -------------------------------------------------------------- *)

let test_memprof_gauges () =
  Obs.Memprof.sample ();
  Alcotest.(check bool) "minor words observed" true
    (Obs.Gauge.value Obs.Memprof.minor_words > 0.0);
  let names = List.map fst (Obs.Gauge.snapshot ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "gc.minor_words"; "gc.major_words"; "gc.promoted_words";
      "gc.heap_words"; "gc.compactions"; "gc.minor_collections";
      "gc.major_collections";
    ];
  let x, bytes = Obs.Memprof.with_alloc (fun () -> List.init 1000 Fun.id) in
  Alcotest.(check int) "with_alloc result" 1000 (List.length x);
  Alcotest.(check bool) "allocation measured" true (bytes > 0.0)

let test_span_with_alloc () =
  with_clean_sink (fun () ->
      (* disabled: no events, no overhead path *)
      let r = Obs.Span.with_alloc "quiet" (fun () -> 3) in
      Alcotest.(check int) "result while disabled" 3 r;
      Alcotest.(check int) "nothing recorded" 0
        (List.length (Obs.Sink.events ()));
      Obs.Sink.enable ();
      let keep = Obs.Span.with_alloc "alloc" (fun () -> Array.make 4096 0.0) in
      Alcotest.(check int) "result" 4096 (Array.length keep);
      (match Obs.Sink.events () with
      | [ b; e ] ->
          Alcotest.(check bool) "begin carries no delta" true
            (b.Obs.Sink.alloc_bytes = None);
          (match e.Obs.Sink.alloc_bytes with
          | Some bytes ->
              Alcotest.(check bool) "end carries the bytes" true
                (bytes >= 4096.0 *. 8.0)
          | None -> Alcotest.fail "End event lost the allocation delta")
      | evs -> Alcotest.failf "expected B/E, got %d events" (List.length evs));
      let text = Obs.Trace.to_string () in
      Alcotest.(check bool) "trace renders alloc_b" true
        (Astring.String.is_infix ~affix:"\"alloc_b\":" text);
      match Obs.Trace.validate_string text with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace with alloc_b invalid: %s" msg)

(* --- profile -------------------------------------------------------------- *)

let test_profile_collapse_invariance () =
  let samples =
    [
      ([ "main"; "solve"; "pivot" ], 3.0);
      ([ "main"; "solve" ], 1.0);
      ([ "main"; "solve"; "pivot" ], 2.0);
      ([ "main" ], 5.0);
      ([ "main"; "io" ], 4.0);
    ]
  in
  let a = Obs.Profile.collapse samples in
  let b = Obs.Profile.collapse (List.rev samples) in
  Alcotest.(check (list (pair string (float 1e-9))))
    "collapse is sample-order-invariant" a b;
  Alcotest.(check bool) "duplicate stacks sum their weights" true
    (List.assoc_opt "main;solve;pivot" a = Some 5.0);
  let stacks = List.map fst a in
  Alcotest.(check (list string))
    "entries sorted by stack string" (List.sort compare stacks) stacks

let burn i =
  (* enough floating-point work per task for ITIMER_PROF ticks to land
     mid-task; opaque so flambda cannot fold the loop away *)
  let acc = ref (float_of_int i) in
  for j = 1 to 1_500_000 do
    acc := Float.rem ((!acc *. 1.000001) +. float_of_int j) 1e9
  done;
  ignore (Sys.opaque_identity !acc)

let test_profile_hammer () =
  (* 4 pool domains burning CPU while the engine samples at 1 kHz: no
     crashes or wedged domains, sample counts positive and monotone,
     rings registered, and the aggregate well-formed. The SIGPROF
     handler touches only DLS rings and atomics, so it must coexist
     with whatever any domain is doing when the signal lands. *)
  Obs.Profile.clear ();
  (match Obs.Profile.start ~rate:1000.0 Obs.Profile.Cpu with
  | Error msg -> Alcotest.failf "cpu engine failed to start: %s" msg
  | Ok () -> ());
  Fun.protect ~finally:Obs.Profile.stop (fun () ->
      let pool = P.create 4 in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool)
        (fun () -> ignore (P.run pool (List.init 16 (fun i () -> burn i))));
      let st1 = Obs.Profile.stat () in
      Alcotest.(check bool) "samples landed" true
        (st1.Obs.Profile.s_samples > 0);
      Alcotest.(check bool) "a ring registered" true
        (st1.Obs.Profile.s_rings >= 1);
      let pool2 = P.create 4 in
      Fun.protect
        ~finally:(fun () -> P.shutdown pool2)
        (fun () ->
          ignore (P.run pool2 (List.init 16 (fun i () -> burn (i + 16)))));
      let st2 = Obs.Profile.stat () in
      Alcotest.(check bool) "sample count monotone" true
        (st2.Obs.Profile.s_samples >= st1.Obs.Profile.s_samples);
      Alcotest.(check bool) "retained bounded by recorded" true
        (st2.Obs.Profile.s_retained <= st2.Obs.Profile.s_samples);
      let agg = Obs.Profile.aggregate () in
      Alcotest.(check bool) "aggregate nonempty" true (agg <> []);
      List.iter
        (fun (stack, w) ->
          Alcotest.(check bool) "stack nonempty" true
            (String.length stack > 0);
          Alcotest.(check bool) "frames sanitized (no spaces)" true
            (not (String.contains stack ' '));
          Alcotest.(check bool) "positive weight" true (w > 0.0))
        agg);
  Alcotest.(check bool) "engine disarmed" true (Obs.Profile.running () = None)

let test_report_tables () =
  let c = C.make "test.report" in
  C.reset c;
  let before = C.snapshot () in
  C.add c 3;
  let delta = Obs.Report.delta_table ~before in
  Alcotest.(check bool) "delta table lists the counter" true
    (Astring.String.is_infix ~affix:"test.report"
       (Stats.Table.to_string delta));
  let full = Stats.Table.to_string (Obs.Report.to_table ()) in
  Alcotest.(check bool) "full table lists the counter" true
    (Astring.String.is_infix ~affix:"test.report" full)

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "delta" `Quick test_counter_delta;
          Alcotest.test_case "4-domain hammer" `Quick test_counter_hammer;
          Alcotest.test_case "delta reports dropped counters" `Quick
            test_counter_delta_dropped;
        ] );
      ("gauge", [ Alcotest.test_case "set/get" `Quick test_gauge ]);
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "quantile error bounded by ratio" `Quick
            test_histogram_quantile_bound;
          Alcotest.test_case "4-domain hammer" `Quick test_histogram_hammer;
        ] );
      ("labeled", [ Alcotest.test_case "families" `Quick test_labeled ]);
      ( "expo",
        [
          Alcotest.test_case "prometheus" `Quick test_expo_prometheus;
          Alcotest.test_case "json" `Quick test_expo_json;
          Alcotest.test_case "empty histogram exposed" `Quick
            test_expo_empty_histogram;
          Alcotest.test_case "slo burn rate" `Quick test_slo_burn_rate;
        ] );
      ( "ctx",
        [ Alcotest.test_case "request ids on events" `Quick test_sink_ctx ] );
      ( "span",
        [
          Alcotest.test_case "disabled = silent" `Quick test_span_disabled;
          Alcotest.test_case "timed" `Quick test_timed;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on raise" `Quick
            test_span_raise_still_closes;
          Alcotest.test_case "merge across domains" `Quick
            test_span_merge_across_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden round-trip" `Quick test_trace_golden;
          Alcotest.test_case "validator rejects" `Quick
            test_trace_validator_rejects;
          Alcotest.test_case "multi-process merge" `Quick test_trace_merge;
        ] );
      ( "phase",
        [
          Alcotest.test_case "records with ids and detail" `Quick
            test_phase_records;
          Alcotest.test_case "raise + ctx filter" `Quick
            test_phase_raise_and_filter;
          Alcotest.test_case "ring bound" `Quick test_phase_ring_bound;
          Alcotest.test_case "histogram exemplars" `Quick
            test_histogram_exemplars;
        ] );
      ( "event",
        [
          Alcotest.test_case "record, ctx and JSON lines" `Quick
            test_event_basics;
          Alcotest.test_case "level threshold" `Quick test_event_levels;
          Alcotest.test_case "ring wraparound" `Quick test_event_wraparound;
          Alcotest.test_case "4-domain hammer" `Quick test_event_hammer;
          Alcotest.test_case "json sink mirror" `Quick test_event_json_sink;
        ] );
      ( "memprof",
        [
          Alcotest.test_case "gc gauges" `Quick test_memprof_gauges;
          Alcotest.test_case "span alloc delta" `Quick test_span_with_alloc;
        ] );
      ( "profile",
        [
          Alcotest.test_case "collapse order-invariance" `Quick
            test_profile_collapse_invariance;
          Alcotest.test_case "4-domain hammer while sampling" `Quick
            test_profile_hammer;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pool rejection counter" `Quick
            test_pool_rejected_counter;
          Alcotest.test_case "report tables" `Quick test_report_tables;
        ] );
    ]
