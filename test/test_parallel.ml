(* Tests for the domain pool. *)

module P = Parallel.Pool

let test_single_domain_pool () =
  let pool = P.create 1 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 1 (P.size pool);
      Alcotest.(check (list int)) "runs in order" [ 1; 4; 9 ]
        (P.map pool (fun x -> x * x) [ 1; 2; 3 ]))

let test_results_in_order () =
  let pool = P.create 4 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let inputs = List.init 50 Fun.id in
      (* unequal task durations scramble completion order *)
      let out =
        P.map pool
          (fun x ->
            let spin = (x * 7919) mod 997 in
            let acc = ref 0 in
            for i = 1 to spin * 100 do
              acc := !acc + i
            done;
            ignore !acc;
            x * 2)
          inputs
      in
      Alcotest.(check (list int)) "order preserved"
        (List.map (fun x -> x * 2) inputs)
        out)

let test_empty_run () =
  let pool = P.create 2 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () -> Alcotest.(check (list int)) "empty" [] (P.run pool []))

let test_actually_parallel () =
  (* with 4 domains, 4 concurrent busy-loops should take well under 4x one
     loop's time; assert conservatively on a correctness-adjacent signal:
     all tasks observe distinct domains at least once *)
  let pool = P.create 4 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let ids =
        P.run pool
          (List.init 8 (fun _ () ->
               Unix.sleepf 0.02;
               Domain.self ()))
      in
      let distinct = List.sort_uniq compare ids in
      Alcotest.(check bool) "used several domains" true
        (List.length distinct >= 2))

let test_exception_propagates () =
  let pool = P.create 3 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "raises" true
        (try
           ignore
             (P.run pool
                [
                  (fun () -> 1);
                  (fun () -> failwith "boom");
                  (fun () -> 3);
                ]);
           false
         with Failure msg -> msg = "boom");
      (* pool still usable after an exception *)
      Alcotest.(check (list int)) "still alive" [ 5 ]
        (P.run pool [ (fun () -> 5) ]))

let test_shutdown_semantics () =
  let pool = P.create 2 in
  P.shutdown pool;
  P.shutdown pool (* idempotent *);
  Alcotest.(check bool) "run after shutdown rejected" true
    (try
       ignore (P.run pool [ (fun () -> 1) ]);
       false
     with Invalid_argument _ -> true)

let test_create_validation () =
  Alcotest.(check bool) "zero rejected" true
    (try
       ignore (P.create 0);
       false
     with Invalid_argument _ -> true)

let test_many_batches () =
  let pool = P.create 3 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      for batch = 1 to 20 do
        let out = P.map pool (fun x -> x + batch) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" batch)
          [ 1 + batch; 2 + batch; 3 + batch; 4 + batch; 5 + batch ]
          out
      done)

let test_submit_wait_idle () =
  let pool = P.create 3 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      for _ = 1 to 40 do
        P.submit pool (fun () ->
            ignore (Sys.opaque_identity (ref 0));
            Atomic.incr hits)
      done;
      P.wait_idle pool;
      Alcotest.(check int) "all submitted tasks ran" 40 (Atomic.get hits);
      (* run and submit compose on the same pool *)
      P.submit pool (fun () -> Atomic.incr hits);
      Alcotest.(check (list int)) "run still works" [ 7 ]
        (P.run pool [ (fun () -> 7) ]);
      P.wait_idle pool;
      Alcotest.(check int) "late task ran" 41 (Atomic.get hits))

let test_submit_single_domain () =
  let pool = P.create 1 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let r = ref 0 in
      P.submit pool (fun () -> r := 9);
      (* with no workers the task ran synchronously *)
      Alcotest.(check int) "ran inline" 9 !r;
      P.wait_idle pool)

let test_submit_exception_swallowed () =
  let pool = P.create 2 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let before =
        match Obs.Counter.find "pool.task_errors" with
        | Some c -> Obs.Counter.value c
        | None -> 0
      in
      P.submit pool (fun () -> failwith "boom");
      P.wait_idle pool;
      let after =
        match Obs.Counter.find "pool.task_errors" with
        | Some c -> Obs.Counter.value c
        | None -> 0
      in
      Alcotest.(check int) "error counted" (before + 1) after;
      (* the worker survived: the pool still runs tasks *)
      Alcotest.(check (list int)) "alive" [ 1; 2 ]
        (P.run pool [ (fun () -> 1); (fun () -> 2) ]))

let test_obs_ctx_propagates () =
  (* the ambient trace ctx and open span at submission must be visible
     inside pool tasks, whichever worker domain picks them up — without
     this, phases recorded under a pool (the portfolio's parallel
     candidates) lose their request attribution *)
  let pool = P.create 3 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      let seen =
        Obs.Sink.with_ctx "req-ctx" (fun () ->
            Obs.Sink.with_span_id 42 (fun () ->
                P.run pool
                  (List.init 16 (fun _ () ->
                       ( Obs.Sink.current_ctx (),
                         Obs.Sink.current_span () )))))
      in
      List.iter
        (fun (ctx, span) ->
          Alcotest.(check (option string))
            "ctx crosses the pool" (Some "req-ctx") ctx;
          Alcotest.(check (option int))
            "parent span crosses the pool" (Some 42) span)
        seen;
      (* submit captures at submission time too *)
      let got = Atomic.make None in
      Obs.Sink.with_ctx "bg-ctx" (fun () ->
          P.submit pool (fun () ->
              Atomic.set got (Obs.Sink.current_ctx ())));
      P.wait_idle pool;
      Alcotest.(check (option string))
        "submit captures ctx" (Some "bg-ctx") (Atomic.get got);
      (* and the capture does not leak outside its task *)
      let clean =
        P.run pool [ (fun () -> Obs.Sink.current_ctx ()) ] |> List.hd
      in
      Alcotest.(check (option string)) "no ctx leak" None clean)

let test_default_jobs () =
  let j = P.default_jobs () in
  Alcotest.(check bool) "sane" true (j >= 1 && j <= 8)

(* A pool task that overruns its budget without beating trips the
   watchdog exactly once (one event, one hook firing), degrades
   readiness, and recovers once the task finishes. *)
let test_watchdog_stuck_task () =
  Obs.Health.reset ();
  Obs.Event.clear ();
  Obs.Health.set_task_budget_s 0.05;
  let hook_fired = ref 0 in
  Obs.Health.set_stuck_hook (Some (fun _ -> incr hook_fired));
  (* >= 2 domains: on a single-domain pool submit runs the task inline on
     the caller, which would finish before the check below *)
  let pool = P.create 2 in
  Fun.protect
    ~finally:(fun () ->
      P.shutdown pool;
      Obs.Health.reset ())
    (fun () ->
      P.submit pool (fun () -> Unix.sleepf 0.6);
      Unix.sleepf 0.2;
      let stuck = Obs.Health.check () in
      Alcotest.(check int) "one stuck task" 1 (List.length stuck);
      (match stuck with
      | [ s ] ->
          Alcotest.(check string) "task name" "pool.task"
            s.Obs.Health.stask;
          Alcotest.(check bool) "over budget" true (s.Obs.Health.sage_s > 0.05)
      | _ -> ());
      (match Obs.Health.status () with
      | Obs.Health.Degraded _ -> ()
      | s ->
          Alcotest.fail
            ("expected degraded, got " ^ Obs.Health.status_to_string s));
      (* a second scan still sees the task but reports no new incident *)
      let stuck2 = Obs.Health.check () in
      Alcotest.(check int) "still stuck" 1 (List.length stuck2);
      P.wait_idle pool;
      Alcotest.(check int) "recovered: no stuck tasks" 0
        (List.length (Obs.Health.check ()));
      (match Obs.Health.status () with
      | Obs.Health.Ok -> ()
      | s ->
          Alcotest.fail ("expected ok, got " ^ Obs.Health.status_to_string s));
      let count name =
        Obs.Event.snapshot ()
        |> List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.name = name)
        |> List.length
      in
      Alcotest.(check int) "exactly one stuck event" 1
        (count "health.stuck_task");
      Alcotest.(check int) "one recovery event" 1
        (count "health.task_recovered");
      Alcotest.(check int) "hook fired once" 1 !hook_fired)

(* The pool stamps queue-depth and capacity gauges. *)
let test_pool_gauges () =
  let pool = P.create 2 in
  Fun.protect
    ~finally:(fun () -> P.shutdown pool)
    (fun () ->
      ignore (P.run pool [ (fun () -> 1); (fun () -> 2) ]);
      let gauge name =
        match
          List.assoc_opt name (Obs.Gauge.snapshot ())
        with
        | Some v -> v
        | None -> Alcotest.fail (name ^ " gauge not set")
      in
      Alcotest.(check (float 0.0)) "capacity" 2.0 (gauge "pool.capacity");
      Alcotest.(check (float 0.0)) "queue drained" 0.0
        (gauge "pool.queue_depth"))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "single domain" `Quick test_single_domain_pool;
          Alcotest.test_case "order preserved" `Quick test_results_in_order;
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "actually parallel" `Quick test_actually_parallel;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "shutdown" `Quick test_shutdown_semantics;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "many batches" `Quick test_many_batches;
          Alcotest.test_case "submit + wait_idle" `Quick test_submit_wait_idle;
          Alcotest.test_case "submit single domain" `Quick
            test_submit_single_domain;
          Alcotest.test_case "submit exception swallowed" `Quick
            test_submit_exception_swallowed;
          Alcotest.test_case "obs ctx/span propagate" `Quick
            test_obs_ctx_propagates;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "watchdog stuck task" `Quick
            test_watchdog_stuck_task;
          Alcotest.test_case "pool gauges" `Quick test_pool_gauges;
        ] );
    ]
