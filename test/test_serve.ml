(* Tests for the serving layer: canonicalization, the LRU result cache,
   deadline-aware dispatch, the wire protocol and the server loop. *)

let rng seed = Workloads.Rng.create seed

let generators =
  [
    ( "identical",
      fun r -> Workloads.Gen.identical r ~n:10 ~m:3 ~k:3 () );
    ("uniform", fun r -> Workloads.Gen.uniform r ~n:10 ~m:3 ~k:3 ());
    ("unrelated", fun r -> Workloads.Gen.unrelated r ~n:10 ~m:3 ~k:3 ());
    ( "restricted",
      fun r -> Workloads.Gen.restricted_class_uniform r ~n:10 ~m:3 ~k:3 () );
    ( "cu-ptimes",
      fun r -> Workloads.Gen.class_uniform_ptimes r ~n:10 ~m:3 ~k:3 () );
  ]

(* --- Canon -------------------------------------------------------------- *)

let test_canon_permutation_invariance () =
  List.iter
    (fun (name, gen) ->
      for seed = 1 to 12 do
        let r = rng seed in
        let inst = gen r in
        let key = Serve.Canon.key inst in
        for trial = 1 to 4 do
          let shuffled = Serve.Canon.shuffle r inst in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d trial %d" name seed trial)
            key
            (Serve.Canon.key shuffled)
        done
      done)
    generators

let test_canon_prehash_collides_on_permutations () =
  List.iter
    (fun (name, gen) ->
      for seed = 1 to 12 do
        let r = rng (200 + seed) in
        let inst = gen r in
        let ph = Serve.Canon.prehash inst in
        for trial = 1 to 4 do
          let shuffled = Serve.Canon.shuffle r inst in
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d trial %d" name seed trial)
            ph
            (Serve.Canon.prehash shuffled)
        done
      done)
    generators

let test_canon_prehash_roundtrip_store () =
  (* the skip path stores under the canonical key via
     assignment_to_canonical; check the two translations invert *)
  List.iter
    (fun (name, gen) ->
      let inst = gen (rng 77) in
      let canon = Serve.Canon.canonicalize inst in
      let result = Algos.List_scheduling.schedule inst in
      let original = Core.Schedule.assignment result.Algos.Common.schedule in
      let back =
        Serve.Canon.assignment_to_original canon
          (Serve.Canon.assignment_to_canonical canon original)
      in
      Alcotest.(check (array int)) (name ^ " roundtrip") original back)
    generators

let test_canon_is_idempotent () =
  List.iter
    (fun (name, gen) ->
      let inst = gen (rng 99) in
      let c = Serve.Canon.canonicalize inst in
      let c2 = Serve.Canon.canonicalize c.Serve.Canon.instance in
      Alcotest.(check string) (name ^ " fixpoint")
        (Core.Instance_io.to_string c.Serve.Canon.instance)
        (Core.Instance_io.to_string c2.Serve.Canon.instance))
    generators

let test_canon_schedule_mapping () =
  List.iter
    (fun (name, gen) ->
      for seed = 1 to 8 do
        let r = rng (100 + seed) in
        let original = gen r in
        let shuffled = Serve.Canon.shuffle r original in
        let canon = Serve.Canon.canonicalize shuffled in
        (* solve the canonical instance, then map the schedule back into
           the shuffled instance's labeling *)
        let result = Algos.List_scheduling.schedule canon.Serve.Canon.instance in
        let back =
          Serve.Canon.assignment_to_original canon
            (Core.Schedule.assignment result.Algos.Common.schedule)
        in
        let sched = Core.Schedule.make shuffled back in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d valid" name seed)
          true
          (Core.Schedule.is_valid shuffled sched);
        let m1 = result.Algos.Common.makespan in
        let m2 = Core.Schedule.makespan sched in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d makespan preserved" name seed)
          true
          (Float.abs (m1 -. m2) <= 1e-9 *. Float.max 1.0 (Float.max m1 m2))
      done)
    generators

(* --- Cache -------------------------------------------------------------- *)

let counter name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> 0

let test_cache_lru () =
  let cache = Serve.Cache.create ~capacity:2 in
  let hits0 = counter "serve.cache_hits" in
  let misses0 = counter "serve.cache_misses" in
  let evictions0 = counter "serve.cache_evictions" in
  Serve.Cache.put cache "a" 1;
  Serve.Cache.put cache "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Serve.Cache.find cache "a");
  (* b is now least recently used; inserting c evicts it *)
  Serve.Cache.put cache "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Serve.Cache.find cache "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Serve.Cache.find cache "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Serve.Cache.find cache "c");
  Alcotest.(check int) "length" 2 (Serve.Cache.length cache);
  Alcotest.(check int) "hits counted" (hits0 + 3) (counter "serve.cache_hits");
  Alcotest.(check int) "misses counted" (misses0 + 1)
    (counter "serve.cache_misses");
  Alcotest.(check int) "evictions counted" (evictions0 + 1)
    (counter "serve.cache_evictions")

let test_cache_evict_event () =
  (* an eviction leaves a flight-recorder event carrying the evicted
     entry's age and hit count, and the size gauge tracks the table *)
  Obs.Event.clear ();
  Fun.protect
    ~finally:(fun () -> Obs.Event.clear ())
    (fun () ->
      let cache = Serve.Cache.create ~capacity:2 in
      Serve.Cache.put cache "a" 1;
      Serve.Cache.put cache "b" 2;
      ignore (Serve.Cache.find cache "a");
      ignore (Serve.Cache.find cache "a");
      Serve.Cache.put cache "c" 3;
      (* "b" (never hit) was the LRU *)
      let g = Obs.Gauge.make "serve.cache_size" in
      Alcotest.(check (float 1e-9)) "size gauge" 2.0 (Obs.Gauge.value g);
      match
        List.filter
          (fun e -> e.Obs.Event.name = "serve.cache.evict")
          (Obs.Event.snapshot ())
      with
      | [ e ] -> (
          (match List.assoc_opt "hits" e.Obs.Event.fields with
          | Some (Obs.Event.Int 0) -> ()
          | _ -> Alcotest.fail "evicted entry was never hit");
          match List.assoc_opt "age_s" e.Obs.Event.fields with
          | Some (Obs.Event.Float age) ->
              Alcotest.(check bool) "age is sane" true
                (age >= 0.0 && age < 60.0)
          | _ -> Alcotest.fail "no age_s field on the eviction event")
      | evs ->
          Alcotest.failf "expected 1 eviction event, got %d" (List.length evs))

let test_cache_overwrite () =
  let cache = Serve.Cache.create ~capacity:2 in
  Serve.Cache.put cache "k" 1;
  Serve.Cache.put cache "k" 2;
  Alcotest.(check (option int)) "overwritten" (Some 2)
    (Serve.Cache.find cache "k");
  Alcotest.(check int) "no duplicate" 1 (Serve.Cache.length cache)

(* --- Dispatch ----------------------------------------------------------- *)

let test_dispatch_exact_small () =
  let inst = Workloads.Gen.uniform (rng 7) ~n:8 ~m:3 ~k:3 () in
  match Serve.Dispatch.solve ~hint:"exact" inst with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      Alcotest.(check bool) "not degraded" false o.Serve.Dispatch.degraded;
      let exact = Algos.Exact.makespan inst in
      Alcotest.(check (float 1e-9)) "optimal makespan" exact
        o.Serve.Dispatch.result.Algos.Common.makespan

let test_dispatch_deadline_degrades () =
  let inst = Workloads.Gen.uniform (rng 8) ~n:400 ~m:8 ~k:12 () in
  match Serve.Dispatch.solve ~hint:"portfolio" ~deadline_ms:0.0 inst with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      Alcotest.(check bool) "degraded" true o.Serve.Dispatch.degraded;
      Alcotest.(check bool) "valid schedule" true
        (Core.Schedule.is_valid inst
           o.Serve.Dispatch.result.Algos.Common.schedule)

let test_dispatch_unknown_solver () =
  let inst = Workloads.Gen.uniform (rng 9) ~n:6 ~m:2 ~k:2 () in
  match Serve.Dispatch.solve ~hint:"simplex-magic" inst with
  | Error msg ->
      Alcotest.(check bool) "names the solver" true
        (Astring.String.is_infix ~affix:"simplex-magic" msg)
  | Ok _ -> Alcotest.fail "expected an error"

let test_dispatch_lpt_inapplicable () =
  let inst = Workloads.Gen.unrelated (rng 10) ~n:8 ~m:3 ~k:3 () in
  match Serve.Dispatch.solve ~hint:"lpt" inst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lpt should not apply to unrelated machines"

(* --- Proto -------------------------------------------------------------- *)

let roundtrip_via_file write read =
  let path = Filename.temp_file "serve_proto" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      write oc;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic))

let test_proto_request_roundtrip () =
  let inst = Workloads.Gen.identical (rng 11) ~n:5 ~m:2 ~k:2 () in
  let req =
    {
      Serve.Proto.solver = Some "exact";
      deadline_ms = Some 25.0;
      instance = inst; trace = None
    }
  in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_request oc req;
        Serve.Proto.write_request oc { req with solver = None; deadline_ms = None })
      (fun ic ->
        let a = Serve.Proto.read_request ic in
        let b = Serve.Proto.read_request ic in
        let c = Serve.Proto.read_request ic in
        (a, b, c))
  with
  | Ok (Some a), Ok (Some b), Ok None ->
      Alcotest.(check (option string)) "solver" (Some "exact") a.Serve.Proto.solver;
      Alcotest.(check bool) "deadline" true (a.Serve.Proto.deadline_ms = Some 25.0);
      Alcotest.(check string) "instance roundtrips"
        (Core.Instance_io.to_string inst)
        (Core.Instance_io.to_string a.Serve.Proto.instance);
      Alcotest.(check (option string)) "defaults" None b.Serve.Proto.solver
  | _ -> Alcotest.fail "unexpected roundtrip shape"

let test_proto_response_roundtrip () =
  let reply =
    Serve.Proto.Reply
      {
        solver = "exact";
        cache_hit = true;
        degraded = false;
        makespan = 117.25;
        elapsed_us = 42;
        assignment = [| 0; 1; 1; 0 |];
        trace = None;
      }
  in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_response oc reply;
        Serve.Proto.write_response oc (Serve.Proto.Error "bad things\nhappened"))
      (fun ic ->
        let a = Serve.Proto.read_response ic in
        let b = Serve.Proto.read_response ic in
        let c = Serve.Proto.read_response ic in
        (a, b, c))
  with
  | Ok (Some (Serve.Proto.Reply r)), Ok (Some (Serve.Proto.Error msg)), Ok None
    ->
      Alcotest.(check string) "solver" "exact" r.Serve.Proto.solver;
      Alcotest.(check bool) "hit" true r.Serve.Proto.cache_hit;
      Alcotest.(check (float 1e-9)) "makespan" 117.25 r.Serve.Proto.makespan;
      Alcotest.(check bool) "assignment" true (r.Serve.Proto.assignment = [| 0; 1; 1; 0 |]);
      (* newline was flattened to keep the framing intact *)
      Alcotest.(check string) "error single line" "bad things happened" msg
  | _ -> Alcotest.fail "unexpected roundtrip shape"

let test_proto_trace_roundtrip () =
  (* the trace field survives both frame kinds, with and without a
     parent span, and replies echo the adopted id *)
  let inst = Workloads.Gen.identical (rng 31) ~n:4 ~m:2 ~k:2 () in
  let req tr =
    {
      Serve.Proto.solver = None;
      deadline_ms = None;
      instance = inst;
      trace = tr;
    }
  in
  (match
     roundtrip_via_file
       (fun oc ->
         Serve.Proto.write_request oc
           (req (Some { Serve.Proto.tid = "lg7.3"; parent = Some 12 }));
         Serve.Proto.write_request oc
           (req (Some { Serve.Proto.tid = "cli-a"; parent = None }));
         Serve.Proto.write_request oc (req None))
       (fun ic ->
         let a = Serve.Proto.read_request ic in
         let b = Serve.Proto.read_request ic in
         let c = Serve.Proto.read_request ic in
         (a, b, c))
   with
  | Ok (Some a), Ok (Some b), Ok (Some c) ->
      (match a.Serve.Proto.trace with
      | Some { Serve.Proto.tid = "lg7.3"; parent = Some 12 } -> ()
      | _ -> Alcotest.fail "trace with parent did not roundtrip");
      (match b.Serve.Proto.trace with
      | Some { Serve.Proto.tid = "cli-a"; parent = None } -> ()
      | _ -> Alcotest.fail "trace without parent did not roundtrip");
      Alcotest.(check bool) "absent trace stays absent" true
        (c.Serve.Proto.trace = None)
  | _ -> Alcotest.fail "unexpected trace roundtrip shape");
  (* a reply's trace line roundtrips *)
  (match
     roundtrip_via_file
       (fun oc ->
         Serve.Proto.write_response oc
           (Serve.Proto.Reply
              {
                solver = "greedy";
                cache_hit = false;
                degraded = false;
                makespan = 9.0;
                elapsed_us = 7;
                assignment = [| 0 |];
                trace = Some "lg7.3";
              }))
       Serve.Proto.read_response
   with
  | Ok (Some (Serve.Proto.Reply r)) ->
      Alcotest.(check (option string)) "reply echoes trace" (Some "lg7.3")
        r.Serve.Proto.trace
  | _ -> Alcotest.fail "reply with trace did not roundtrip");
  (* session frames carry the trace too *)
  (match
     roundtrip_via_file
       (fun oc ->
         Serve.Proto.write_session_request oc
           {
             Serve.Proto.sid = "s1";
             op = Serve.Proto.S_close;
             trace = Some { Serve.Proto.tid = "lg7.3"; parent = Some 4 };
           })
       Serve.Proto.read_incoming
   with
  | Ok (Some (Serve.Proto.Session sreq)) -> (
      match sreq.Serve.Proto.trace with
      | Some { Serve.Proto.tid = "lg7.3"; parent = Some 4 } -> ()
      | _ -> Alcotest.fail "session trace did not roundtrip")
  | _ -> Alcotest.fail "session frame did not roundtrip");
  (* malformed trace ids are rejected, and the stream resyncs *)
  List.iter
    (fun field ->
      let text =
        Printf.sprintf "request v1\n%s\ninstance\n%send\n" field
          (Core.Instance_io.to_string inst)
      in
      match
        roundtrip_via_file
          (fun oc -> output_string oc text)
          Serve.Proto.read_request
      with
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S rejected with a trace error" field)
            true
            (Astring.String.is_infix ~affix:"trace" msg)
      | Ok _ -> Alcotest.failf "%S should not parse" field)
    [ "trace bad id"; "trace ok/notanint"; "trace ok/-3"; "trace " ]

let test_proto_explain_roundtrip () =
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_explain_request oc "lg7.3";
        Serve.Proto.write_response oc
          (Serve.Proto.Explain_reply
             { body = "trace id=lg7.3 spans=1\nphase depth=0 name=a\n" }))
      (fun ic ->
        let frame = Serve.Proto.read_incoming ic in
        let resp = Serve.Proto.read_response ic in
        (frame, resp))
  with
  | ( Ok (Some (Serve.Proto.Explain id)),
      Ok (Some (Serve.Proto.Explain_reply { body })) ) ->
      Alcotest.(check string) "explain id" "lg7.3" id;
      Alcotest.(check bool) "payload body intact" true
        (Astring.String.is_prefix ~affix:"trace id=lg7.3" body)
  | _ -> Alcotest.fail "explain frame did not roundtrip"

let test_proto_malformed_resync () =
  (* a malformed frame is consumed up to "end"; the next request parses *)
  let inst = Workloads.Gen.identical (rng 12) ~n:4 ~m:2 ~k:2 () in
  let text =
    "banana v9\nsolver exact\nend\n"
    ^ "request v1\ninstance\nnot a keyword\nend\n"
  in
  let good =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "request v1\ninstance\n";
    Buffer.add_string buf (Core.Instance_io.to_string inst);
    Buffer.add_string buf "end\n";
    Buffer.contents buf
  in
  match
    roundtrip_via_file
      (fun oc -> output_string oc (text ^ good))
      (fun ic ->
        let a = Serve.Proto.read_request ic in
        let b = Serve.Proto.read_request ic in
        let c = Serve.Proto.read_request ic in
        (a, b, c))
  with
  | Error bad_header, Error bad_instance, Ok (Some _) ->
      Alcotest.(check bool) "names header" true
        (Astring.String.is_infix ~affix:"banana" bad_header);
      Alcotest.(check bool) "names keyword" true
        (Astring.String.is_infix ~affix:"keyword" bad_instance)
  | _ -> Alcotest.fail "expected error, error, ok"

let test_proto_stats_roundtrip () =
  (* stats frames both ways: the admin request parses via read_incoming,
     and a Stats_reply carries a multi-line exposition body intact *)
  let body = "# TYPE serve_requests counter\nserve_requests{status=\"ok\"} 41\n" in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_stats_request oc Serve.Proto.Prometheus;
        Serve.Proto.write_stats_request oc Serve.Proto.Json)
      (fun ic ->
        let a = Serve.Proto.read_incoming ic in
        let b = Serve.Proto.read_incoming ic in
        let c = Serve.Proto.read_incoming ic in
        (a, b, c))
  with
  | ( Ok (Some (Serve.Proto.Stats Serve.Proto.Prometheus)),
      Ok (Some (Serve.Proto.Stats Serve.Proto.Json)),
      Ok None ) -> (
      (* read_request must reject the admin frame rather than mis-parse *)
      (match
         roundtrip_via_file
           (fun oc -> Serve.Proto.write_stats_request oc Serve.Proto.Prometheus)
           Serve.Proto.read_request
       with
      | Error msg ->
          Alcotest.(check bool) "read_request rejects stats" true
            (Astring.String.is_infix ~affix:"stats" msg)
      | Ok _ -> Alcotest.fail "read_request accepted a stats frame");
      match
        roundtrip_via_file
          (fun oc ->
            Serve.Proto.write_response oc
              (Serve.Proto.Stats_reply
                 { format = Serve.Proto.Prometheus; body }))
          Serve.Proto.read_response
      with
      | Ok (Some (Serve.Proto.Stats_reply { format; body = got })) ->
          Alcotest.(check bool) "format" true (format = Serve.Proto.Prometheus);
          Alcotest.(check string) "multi-line body intact" body got
      | _ -> Alcotest.fail "expected a stats reply")
  | _ -> Alcotest.fail "stats frames did not roundtrip"

let test_proto_events_roundtrip () =
  (* events frames both ways: defaults and explicit count/level both
     parse, and an Events_reply carries its JSON-lines body intact *)
  (match
     roundtrip_via_file
       (fun oc ->
         Serve.Proto.write_events_request oc;
         Serve.Proto.write_events_request ~count:7 ~level:Obs.Event.Warn oc)
       (fun ic ->
         let a = Serve.Proto.read_incoming ic in
         let b = Serve.Proto.read_incoming ic in
         let c = Serve.Proto.read_incoming ic in
         (a, b, c))
   with
  | ( Ok (Some (Serve.Proto.Events { count = None; min_level = Obs.Event.Debug })),
      Ok
        (Some (Serve.Proto.Events { count = Some 7; min_level = Obs.Event.Warn })),
      Ok None ) -> ()
  | _ -> Alcotest.fail "events frames did not roundtrip");
  (* read_request must reject the admin frame rather than mis-parse *)
  (match
     roundtrip_via_file
       (fun oc -> Serve.Proto.write_events_request oc)
       Serve.Proto.read_request
   with
  | Error msg ->
      Alcotest.(check bool) "read_request rejects events" true
        (Astring.String.is_infix ~affix:"events" msg)
  | Ok _ -> Alcotest.fail "read_request accepted an events frame");
  let body =
    "{\"ts_us\":1.000,\"level\":\"info\",\"name\":\"a\",\"domain\":0}\n"
    ^ "{\"ts_us\":2.000,\"level\":\"warn\",\"name\":\"b\",\"domain\":1,\"req\":\"r9\"}\n"
  in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_response oc (Serve.Proto.Events_reply { body }))
      Serve.Proto.read_response
  with
  | Ok (Some (Serve.Proto.Events_reply { body = got })) ->
      Alcotest.(check string) "multi-line body intact" body got
  | _ -> Alcotest.fail "expected an events reply"

let test_proto_health_roundtrip () =
  (* health frames both ways: the admin request parses via read_incoming
     (and is rejected by read_request), and a Health_reply carries its
     multi-line payload intact *)
  (match
     roundtrip_via_file
       (fun oc -> Serve.Proto.write_health_request oc)
       (fun ic ->
         let a = Serve.Proto.read_incoming ic in
         let b = Serve.Proto.read_incoming ic in
         (a, b))
   with
  | Ok (Some Serve.Proto.Health), Ok None -> ()
  | _ -> Alcotest.fail "health frame did not roundtrip");
  (match
     roundtrip_via_file
       (fun oc -> Serve.Proto.write_health_request oc)
       Serve.Proto.read_request
   with
  | Error msg ->
      Alcotest.(check bool) "read_request rejects health" true
        (Astring.String.is_infix ~affix:"health" msg)
  | Ok _ -> Alcotest.fail "read_request accepted a health frame");
  let body =
    "status ok\nliveness ok\ntask_budget_s 30\n"
    ^ "meter name=cache fill=0.125\n"
    ^ "heartbeat domain=0 state=waiting task=- req=- beat_age_s=0.010 \
       task_age_s=0.000\n"
  in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_response oc (Serve.Proto.Health_reply { body }))
      Serve.Proto.read_response
  with
  | Ok (Some (Serve.Proto.Health_reply { body = got })) ->
      Alcotest.(check string) "multi-line body intact" body got
  | _ -> Alcotest.fail "expected a health reply"

let test_proto_session_roundtrip () =
  let inst = Workloads.Gen.unrelated (rng 14) ~n:4 ~m:2 ~k:2 () in
  let frames =
    [
      { Serve.Proto.sid = "s-1"; op = Serve.Proto.S_create inst; trace = None };
      {
        Serve.Proto.sid = "s-1";
        op =
          Serve.Proto.S_add_jobs
            [
              {
                Core.Instance.nsize = 3.5;
                nclass = 1;
                nptimes = Some [| 2.0; infinity |];
                neligible = None;
              };
            ]; trace = None
      };
      { Serve.Proto.sid = "s-1"; op = Serve.Proto.S_drop_jobs [ 0; 2 ]; trace = None };
      {
        Serve.Proto.sid = "s-1";
        op = Serve.Proto.S_resolve { deadline_ms = Some 12.5 }; trace = None
      };
      { Serve.Proto.sid = "s-1"; op = Serve.Proto.S_close; trace = None };
    ]
  in
  let read_all ic =
    List.fold_left
      (fun acc _ -> Serve.Proto.read_incoming ic :: acc)
      [] frames
    |> List.rev
  in
  let got =
    roundtrip_via_file
      (fun oc -> List.iter (Serve.Proto.write_session_request oc) frames)
      read_all
  in
  List.iter2
    (fun (sent : Serve.Proto.session_request) received ->
      match received with
      | Ok (Some (Serve.Proto.Session r)) -> (
          Alcotest.(check string) "sid" sent.Serve.Proto.sid r.Serve.Proto.sid;
          Alcotest.(check string) "op name"
            (Serve.Proto.session_op_name sent.Serve.Proto.op)
            (Serve.Proto.session_op_name r.Serve.Proto.op);
          match (sent.Serve.Proto.op, r.Serve.Proto.op) with
          | Serve.Proto.S_create a, Serve.Proto.S_create b ->
              Alcotest.(check string) "instance"
                (Core.Instance_io.to_string a)
                (Core.Instance_io.to_string b)
          | Serve.Proto.S_add_jobs a, Serve.Proto.S_add_jobs b ->
              Alcotest.(check int) "job count" (List.length a) (List.length b);
              List.iter2
                (fun (x : Core.Instance.new_job) (y : Core.Instance.new_job) ->
                  Alcotest.(check (float 1e-9))
                    "size" x.Core.Instance.nsize y.Core.Instance.nsize;
                  Alcotest.(check int) "class" x.Core.Instance.nclass
                    y.Core.Instance.nclass;
                  Alcotest.(check bool) "ptimes" true
                    (x.Core.Instance.nptimes = y.Core.Instance.nptimes))
                a b
          | Serve.Proto.S_drop_jobs a, Serve.Proto.S_drop_jobs b ->
              Alcotest.(check (list int)) "ids" a b
          | Serve.Proto.S_resolve a, Serve.Proto.S_resolve b ->
              Alcotest.(check bool) "deadline" true
                (a.deadline_ms = b.deadline_ms)
          | Serve.Proto.S_close, Serve.Proto.S_close -> ()
          | _ -> Alcotest.fail "op kind changed in flight")
      | _ -> Alcotest.fail "expected a session frame")
    frames got;
  (* replies both ways: a bare ack and a resolve carrying a schedule *)
  let ack =
    Serve.Proto.Session_reply
      {
        Serve.Proto.sid = "s-1";
        op = "add-jobs";
        generation = 3;
        jobs = 5;
        mode = None;
        solve = None; trace = None
      }
  in
  let resolved =
    Serve.Proto.Session_reply
      {
        Serve.Proto.sid = "s-1";
        op = "resolve";
        generation = 3;
        jobs = 2;
        mode = Some "repair";
        solve =
          Some
            {
              Serve.Proto.solver = "incremental-repair";
              cache_hit = false;
              degraded = false;
              makespan = 9.75;
              elapsed_us = 11;
              assignment = [| 1; 0 |]; trace = None
            }; trace = None
      }
  in
  match
    roundtrip_via_file
      (fun oc ->
        Serve.Proto.write_response oc ack;
        Serve.Proto.write_response oc resolved)
      (fun ic ->
        let a = Serve.Proto.read_response ic in
        let b = Serve.Proto.read_response ic in
        (a, b))
  with
  | ( Ok (Some (Serve.Proto.Session_reply a)),
      Ok (Some (Serve.Proto.Session_reply b)) ) ->
      Alcotest.(check string) "ack op" "add-jobs" a.Serve.Proto.op;
      Alcotest.(check int) "ack generation" 3 a.Serve.Proto.generation;
      Alcotest.(check bool) "ack has no schedule" true
        (a.Serve.Proto.solve = None);
      Alcotest.(check (option string)) "mode" (Some "repair")
        b.Serve.Proto.mode;
      (match b.Serve.Proto.solve with
      | Some r ->
          Alcotest.(check string) "solver" "incremental-repair"
            r.Serve.Proto.solver;
          Alcotest.(check (float 1e-9)) "makespan" 9.75 r.Serve.Proto.makespan;
          Alcotest.(check bool) "assignment" true
            (r.Serve.Proto.assignment = [| 1; 0 |])
      | None -> Alcotest.fail "resolve reply lost its schedule")
  | _ -> Alcotest.fail "session replies did not roundtrip"

let test_proto_session_resync () =
  (* malformed session frames mid-stream are consumed up to "end"; the
     stream then yields the next well-formed frame *)
  let inst = Workloads.Gen.identical (rng 15) ~n:4 ~m:2 ~k:2 () in
  let bad =
    [
      (* unknown op *)
      "session v1\nop explode\nid s-1\nend\n";
      (* missing id *)
      "session v1\nop resolve\nend\n";
      (* bad sid characters *)
      "session v1\nop close\nid has spaces!\nend\n";
      (* add-jobs with a broken job spec *)
      "session v1\nop add-jobs\nid s-1\njob size=banana\nend\n";
      (* create without an instance *)
      "session v1\nop create\nid s-1\nend\n";
    ]
  in
  let good oc =
    Serve.Proto.write_session_request oc
      { Serve.Proto.sid = "s-2"; op = Serve.Proto.S_create inst; trace = None }
  in
  List.iter
    (fun frame ->
      match
        roundtrip_via_file
          (fun oc ->
            output_string oc frame;
            good oc)
          (fun ic ->
            let a = Serve.Proto.read_incoming ic in
            let b = Serve.Proto.read_incoming ic in
            (a, b))
      with
      | Error _, Ok (Some (Serve.Proto.Session r)) ->
          Alcotest.(check string) "recovered frame sid" "s-2" r.Serve.Proto.sid
      | Error _, second ->
          Alcotest.failf "no resync after %S: %s" frame
            (match second with
            | Ok None -> "eof"
            | Ok (Some _) -> "wrong frame kind"
            | Error msg -> "error: " ^ msg)
      | Ok _, _ -> Alcotest.failf "malformed frame accepted: %S" frame)
    bad;
  (* read_request must reject a session frame rather than mis-parse it *)
  match roundtrip_via_file good Serve.Proto.read_request with
  | Error msg ->
      Alcotest.(check bool) "read_request rejects session" true
        (Astring.String.is_infix ~affix:"session" msg)
  | Ok _ -> Alcotest.fail "read_request accepted a session frame"

(* --- Server ------------------------------------------------------------- *)

let mk_server () =
  Serve.Server.create
    { Serve.Server.default_config with cache_capacity = 8; jobs = 2 }

let test_server_cache_roundtrip () =
  let server = mk_server () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.shutdown server)
    (fun () ->
      let r = rng 13 in
      let inst = Workloads.Gen.uniform r ~n:9 ~m:3 ~k:3 () in
      let ask instance =
        Serve.Server.handle_request server
          { Serve.Proto.solver = Some "exact"; deadline_ms = None; instance; trace = None }
      in
      match ask inst with
      | Serve.Proto.Error msg -> Alcotest.fail msg
      | Serve.Proto.Stats_reply _ | Serve.Proto.Events_reply _
      | Serve.Proto.Health_reply _ | Serve.Proto.Session_reply _
      | Serve.Proto.Explain_reply _ | Serve.Proto.Profile_reply _ ->
          Alcotest.fail "unexpected admin reply"
      | Serve.Proto.Reply first -> (
          Alcotest.(check bool) "first is a miss" false
            first.Serve.Proto.cache_hit;
          (* the same instance relabeled must hit, with the same makespan,
             and the returned assignment must be valid for the relabeling *)
          let shuffled = Serve.Canon.shuffle r inst in
          match ask shuffled with
          | Serve.Proto.Error msg -> Alcotest.fail msg
          | Serve.Proto.Stats_reply _ | Serve.Proto.Events_reply _
          | Serve.Proto.Health_reply _ | Serve.Proto.Session_reply _
          | Serve.Proto.Explain_reply _ | Serve.Proto.Profile_reply _ ->
              Alcotest.fail "unexpected admin reply"
          | Serve.Proto.Reply second ->
              Alcotest.(check bool) "second is a hit" true
                second.Serve.Proto.cache_hit;
              Alcotest.(check (float 1e-9)) "same makespan"
                first.Serve.Proto.makespan second.Serve.Proto.makespan;
              let sched =
                Core.Schedule.make shuffled second.Serve.Proto.assignment
              in
              Alcotest.(check bool) "assignment valid" true
                (Core.Schedule.is_valid shuffled sched)))

let test_server_stats_frame () =
  (* one solve then a stats frame on the same session: the exposition
     must report that request in the labeled family and the latency
     histogram *)
  let server = mk_server () in
  let inpath = Filename.temp_file "serve_stats_in" ".txt" in
  let outpath = Filename.temp_file "serve_stats_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ inpath; outpath ])
    (fun () ->
      let inst = Workloads.Gen.identical (rng 15) ~n:5 ~m:2 ~k:2 () in
      let oc = open_out inpath in
      Serve.Proto.write_request oc
        { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace = None };
      Serve.Proto.write_stats_request oc Serve.Proto.Prometheus;
      Serve.Proto.write_stats_request oc Serve.Proto.Json;
      close_out oc;
      let ic = open_in inpath in
      let oc = open_out outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Serve.Server.serve_channels server ic oc);
      close_out oc;
      let ic = open_in outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Reply _)) -> ()
          | _ -> Alcotest.fail "expected a solve reply first");
          let ok_count body =
            (* the "serve_requests{status="ok"} N" sample value *)
            let marker = "serve_requests{status=\"ok\"} " in
            match Astring.String.cut ~sep:marker body with
            | Some (_, rest) -> (
                match Astring.String.cut ~sep:"\n" rest with
                | Some (n, _) -> int_of_string n
                | None -> int_of_string rest)
            | None -> Alcotest.fail "no ok sample in exposition"
          in
          let first_ok =
            match Serve.Proto.read_response ic with
            | Ok (Some (Serve.Proto.Stats_reply { body; _ })) ->
                let has affix = Astring.String.is_infix ~affix body in
                Alcotest.(check bool) "latency histogram present" true
                  (has "# TYPE serve_request_latency_us histogram");
                Alcotest.(check bool) "latency histogram has buckets" true
                  (has "serve_request_latency_us_bucket{le=");
                let n = ok_count body in
                Alcotest.(check bool) "ok sample counts the request" true
                  (n >= 1);
                n
            | _ -> Alcotest.fail "expected a prometheus stats reply"
          in
          match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Stats_reply { format; body })) ->
              Alcotest.(check bool) "json format" true
                (format = Serve.Proto.Json);
              Alcotest.(check bool) "json body has histograms" true
                (Astring.String.is_infix ~affix:"\"histograms\"" body);
              (* the stats frame between the two scrapes did not count
                 as a request: admin traffic stays outside the metrics *)
              Alcotest.(check bool) "stats frames not counted" true
                (Astring.String.is_infix
                   ~affix:(Printf.sprintf "\"value\": %d" first_ok)
                   body)
          | _ -> Alcotest.fail "expected a json stats reply"))

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_server_events_frame () =
  (* a solve then an events frame on the same session: the reply body is
     the flight recorder's JSON lines and includes this request's
     lifecycle events *)
  Obs.Event.clear ();
  let server = mk_server () in
  let inpath = Filename.temp_file "serve_events_in" ".txt" in
  let outpath = Filename.temp_file "serve_events_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Obs.Event.clear ();
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ inpath; outpath ])
    (fun () ->
      let inst = Workloads.Gen.identical (rng 17) ~n:5 ~m:2 ~k:2 () in
      let oc = open_out inpath in
      Serve.Proto.write_request oc
        { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace = None };
      Serve.Proto.write_events_request oc;
      close_out oc;
      let ic = open_in inpath in
      let oc = open_out outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Serve.Server.serve_channels server ic oc);
      close_out oc;
      let ic = open_in outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Reply _)) -> ()
          | _ -> Alcotest.fail "expected a solve reply first");
          match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Events_reply { body })) ->
              let lines =
                List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
              in
              Alcotest.(check bool) "body has events" true (lines <> []);
              List.iter
                (fun line ->
                  match Obs.Trace.check_json line with
                  | Ok () -> ()
                  | Error msg ->
                      Alcotest.failf "body line %S is not JSON: %s" line msg)
                lines;
              let has affix = Astring.String.is_infix ~affix body in
              Alcotest.(check bool) "request event present" true
                (has "\"name\":\"serve.request\"");
              Alcotest.(check bool) "done event present" true
                (has "\"name\":\"serve.request.done\"");
              Alcotest.(check bool) "dispatch decision present" true
                (has "\"name\":\"serve.dispatch.decision\"")
          | _ -> Alcotest.fail "expected an events reply"))

let test_server_health_frame () =
  (* a solve then a health frame on the same session: the reply payload
     carries composite status, the registered meters, SLO burn rates and
     per-domain heartbeats *)
  let server = mk_server () in
  let inpath = Filename.temp_file "serve_health_in" ".txt" in
  let outpath = Filename.temp_file "serve_health_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ inpath; outpath ])
    (fun () ->
      let inst = Workloads.Gen.identical (rng 23) ~n:5 ~m:2 ~k:2 () in
      let oc = open_out inpath in
      Serve.Proto.write_request oc
        { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace = None };
      Serve.Proto.write_health_request oc;
      close_out oc;
      let ic = open_in inpath in
      let oc = open_out outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Serve.Server.serve_channels server ic oc);
      close_out oc;
      let ic = open_in outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Reply _)) -> ()
          | _ -> Alcotest.fail "expected a solve reply first");
          match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Health_reply { body })) ->
              let lines =
                List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
              in
              let starts prefix l = Astring.String.is_prefix ~affix:prefix l in
              let count prefix =
                List.length (List.filter (starts prefix) lines)
              in
              (* nothing is stuck and no meter is saturated in a test *)
              Alcotest.(check bool) "status ok" true
                (List.mem "status ok" lines);
              Alcotest.(check bool) "liveness ok" true
                (List.mem "liveness ok" lines);
              Alcotest.(check int) "uptime line" 1 (count "uptime_s ");
              (* pool.queue, cache and gc.heap meters from create *)
              Alcotest.(check bool) "cache meter" true
                (List.exists (starts "meter name=cache ") lines);
              Alcotest.(check bool) "pool meter" true
                (List.exists (starts "meter name=pool.queue ") lines);
              (* availability + latency objectives x 5m/1h windows *)
              Alcotest.(check int) "slo lines" 4 (count "slo name=");
              (* the session domain itself heartbeats, so >= 1 slot *)
              Alcotest.(check bool) "heartbeat lines" true
                (count "heartbeat domain=" >= 1)
          | _ -> Alcotest.fail "expected a health reply"))

let test_dispatch_pressure_sheds () =
  (* admission control: under pressure the heavy tier is shed before it
     runs, the answer comes degraded from the fast path, and the shed
     counter (not the deadline counter) takes the hit *)
  let inst = Workloads.Gen.uniform (rng 29) ~n:9 ~m:3 ~k:3 () in
  let shed_before = Obs.Counter.value (Obs.Counter.make "serve.dispatch.shed") in
  (match Serve.Dispatch.solve ~pressure:(fun () -> true) inst with
  | Ok o ->
      Alcotest.(check bool) "degraded" true o.Serve.Dispatch.degraded;
      Alcotest.(check bool) "fast-path solver" true
        (o.Serve.Dispatch.solver <> "exact"
        && o.Serve.Dispatch.solver <> "exact-budgeted")
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "shed counted" (shed_before + 1)
    (Obs.Counter.value (Obs.Counter.make "serve.dispatch.shed"));
  (* no pressure: the same instance runs the heavy tier undegraded *)
  match Serve.Dispatch.solve inst with
  | Ok o -> Alcotest.(check bool) "not degraded" false o.Serve.Dispatch.degraded
  | Error msg -> Alcotest.fail msg

let test_server_slow_dump () =
  (* acceptance criterion: a request over the slow threshold dumps a
     valid JSON-lines recorder slice carrying the request id on every
     event, including the dispatch decision and the exact solver's own
     events *)
  let dump = Filename.temp_file "serve_dump" ".jsonl" in
  let oc = open_out dump in
  let server =
    Serve.Server.create
      {
        Serve.Server.default_config with
        cache_capacity = 8;
        jobs = 2;
        slow_ms = Some 0.0;
        dump_channel = Some oc;
        dump_min_interval_s = 0.0;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      (try close_out oc with Sys_error _ -> ());
      try Sys.remove dump with Sys_error _ -> ())
    (fun () ->
      let inst = Workloads.Gen.uniform (rng 21) ~n:8 ~m:3 ~k:3 () in
      (match
         Serve.Server.handle_request server
           { Serve.Proto.solver = Some "exact"; deadline_ms = None; instance = inst; trace = None }
       with
      | Serve.Proto.Reply _ -> ()
      | _ -> Alcotest.fail "expected a solve reply");
      flush oc;
      match read_lines dump with
      | header :: events ->
          Alcotest.(check bool) "header names the trigger" true
            (Astring.String.is_infix ~affix:"\"dump\":\"slow-request\"" header);
          let req =
            match Astring.String.cut ~sep:"\"req\":\"" header with
            | Some (_, rest) -> (
                match Astring.String.cut ~sep:"\"" rest with
                | Some (id, _) -> id
                | None -> Alcotest.fail "unterminated req id in header")
            | None -> Alcotest.fail "no req id in the dump header"
          in
          Alcotest.(check bool) "dump has events" true (events <> []);
          List.iter
            (fun line ->
              (match Obs.Trace.check_json line with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.failf "dump line %S is not JSON: %s" line msg);
              Alcotest.(check bool)
                (Printf.sprintf "line carries req id %s" req)
                true
                (Astring.String.is_infix
                   ~affix:(Printf.sprintf "\"req\":\"%s\"" req)
                   line))
            (header :: events);
          let all = String.concat "\n" events in
          let has affix = Astring.String.is_infix ~affix all in
          Alcotest.(check bool) "dispatch decision dumped" true
            (has "\"name\":\"serve.dispatch.decision\"");
          Alcotest.(check bool) "exact-node events dumped" true
            (has "\"name\":\"algos.exact.solve\"")
      | [] -> Alcotest.fail "slow request produced no dump")

let test_server_socket_session () =
  let server = mk_server () in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve_test_%d.sock" (Unix.getpid ()))
  in
  let acceptor = Domain.spawn (fun () -> Serve.Server.listen server ~path) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Domain.join acceptor;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* wait for the acceptor to bind *)
      let rec connect tries =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> fd
        | exception Unix.Unix_error _ when tries > 0 ->
            Unix.close fd;
            Unix.sleepf 0.02;
            connect (tries - 1)
      in
      let fd = connect 200 in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let inst = Workloads.Gen.identical (rng 14) ~n:6 ~m:2 ~k:2 () in
      Serve.Proto.write_request oc
        { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace = None };
      Serve.Proto.write_request oc
        { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace = None };
      output_string oc "request v1\nsolver greedy\nend\n";
      flush oc;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (match Serve.Proto.read_response ic with
      | Ok (Some (Serve.Proto.Reply r)) ->
          Alcotest.(check bool) "miss" false r.Serve.Proto.cache_hit
      | _ -> Alcotest.fail "expected first reply");
      (match Serve.Proto.read_response ic with
      | Ok (Some (Serve.Proto.Reply r)) ->
          Alcotest.(check bool) "hit" true r.Serve.Proto.cache_hit
      | _ -> Alcotest.fail "expected second reply");
      (match Serve.Proto.read_response ic with
      | Ok (Some (Serve.Proto.Error _)) -> ()
      | _ -> Alcotest.fail "expected an error response");
      (match Serve.Proto.read_response ic with
      | Ok None -> ()
      | _ -> Alcotest.fail "expected end of stream");
      Unix.close fd)

(* --- Tracing ------------------------------------------------------------- *)

let test_server_trace_adoption () =
  Obs.Phase.clear ();
  let server = mk_server () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.shutdown server)
    (fun () ->
      let inst = Workloads.Gen.uniform (rng 41) ~n:9 ~m:3 ~k:3 () in
      let ask trace =
        Serve.Server.handle_request server
          { Serve.Proto.solver = Some "greedy"; deadline_ms = None; instance = inst; trace }
      in
      (match ask (Some { Serve.Proto.tid = "cli.9"; parent = Some 77 }) with
      | Serve.Proto.Reply r ->
          Alcotest.(check (option string)) "client id echoed" (Some "cli.9")
            r.Serve.Proto.trace
      | _ -> Alcotest.fail "expected a reply");
      (* the request's phases carry the adopted id, and the root phase
         links under the client's open span *)
      (match Obs.Phase.recent ~ctx:"cli.9" () with
      | [] -> Alcotest.fail "no phases recorded for the adopted id"
      | root :: _ ->
          Alcotest.(check string) "root phase" "serve.request"
            root.Obs.Phase.name;
          Alcotest.(check (option int))
            "root links to the client's span" (Some 77) root.Obs.Phase.parent);
      match ask None with
      | Serve.Proto.Reply r -> (
          match r.Serve.Proto.trace with
          | Some id ->
              Alcotest.(check bool)
                (Printf.sprintf "minted id %S still echoed" id)
                true
                (String.length id > 1 && id.[0] = 'r')
          | None -> Alcotest.fail "minted id not echoed")
      | _ -> Alcotest.fail "expected a reply")

(* One [phase] line of an explain payload -> (depth, name, dur_us). *)
let parse_phase_line line =
  let tok key =
    let prefix = key ^ "=" in
    match
      List.find_map
        (fun t ->
          if Astring.String.is_prefix ~affix:prefix t then
            Some
              (String.sub t (String.length prefix)
                 (String.length t - String.length prefix))
          else None)
        (String.split_on_char ' ' line)
    with
    | Some v -> v
    | None -> Alcotest.failf "phase line %S lacks %s=" line key
  in
  ( int_of_string (tok "depth"),
    tok "name",
    float_of_string (tok "dur_us") )

let test_server_explain_acceptance () =
  (* end-to-end acceptance: a client-minted trace id yields the echoed
     id on the reply, an explain tree whose solver phases are visible
     and account for the request's wall time, an exemplar in the
     exposition, and session ops tagged with their trace *)
  Obs.Phase.clear ();
  let server = mk_server () in
  let inpath = Filename.temp_file "serve_explain_in" ".txt" in
  let outpath = Filename.temp_file "serve_explain_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Obs.Phase.clear ();
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ inpath; outpath ])
    (fun () ->
      (* n in the portfolio band so binary-search probes and LP phases
         show up in the tree *)
      let inst = Workloads.Gen.uniform (rng 42) ~n:24 ~m:3 ~k:3 () in
      let oc = open_out inpath in
      Serve.Proto.write_request oc
        {
          Serve.Proto.solver = Some "auto";
          deadline_ms = None;
          instance = inst;
          trace = Some { Serve.Proto.tid = "acc.1"; parent = None };
        };
      Serve.Proto.write_explain_request oc "acc.1";
      Serve.Proto.write_explain_request oc "no-such-id";
      Serve.Proto.write_session_request oc
        {
          Serve.Proto.sid = "sess-t";
          op = Serve.Proto.S_create inst;
          trace = Some { Serve.Proto.tid = "acc.s"; parent = None };
        };
      close_out oc;
      let ic = open_in inpath in
      let oc = open_out outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Serve.Server.serve_channels server ic oc);
      close_out oc;
      let ic = open_in outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Reply r)) ->
              Alcotest.(check (option string)) "trace echoed" (Some "acc.1")
                r.Serve.Proto.trace
          | _ -> Alcotest.fail "expected a solve reply first");
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Explain_reply { body })) -> (
              let lines =
                List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
              in
              match lines with
              | header :: phases ->
                  Alcotest.(check bool) "header names the trace" true
                    (Astring.String.is_prefix ~affix:"trace id=acc.1 spans="
                       header);
                  let parsed = List.map parse_phase_line phases in
                  let has name =
                    Alcotest.(check bool) (name ^ " phase visible") true
                      (List.exists (fun (_, n, _) -> n = name) parsed)
                  in
                  has "serve.request";
                  has "serve.dispatch";
                  has "core.binary_search";
                  has "core.binary_search.probe";
                  has "lp.simplex.solve";
                  (* probes carry their guess and verdict *)
                  Alcotest.(check bool) "probe verdict visible" true
                    (List.exists
                       (fun l ->
                         Astring.String.is_infix
                           ~affix:"name=core.binary_search.probe" l
                         && Astring.String.is_infix ~affix:"guess=" l
                         && (Astring.String.is_infix ~affix:" feasible" l
                            || Astring.String.is_infix ~affix:" infeasible" l))
                       phases);
                  (* the tree accounts for the request's wall time: the
                     root's direct children sum to its duration within
                     20% (the cache probe and framing outside them are
                     cheap next to the solve) *)
                  (match parsed with
                  | (0, "serve.request", root_dur) :: rest ->
                      let child_sum =
                        List.fold_left
                          (fun acc (d, _, dur) ->
                            if d = 1 then acc +. dur else acc)
                          0.0 rest
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf
                           "children (%.0f us) within 20%% of root (%.0f us)"
                           child_sum root_dur)
                        true
                        (child_sum >= 0.8 *. root_dur
                        && child_sum <= 1.02 *. root_dur)
                  | _ -> Alcotest.fail "first phase is not the root");
                  (* at least one histogram exemplar references the id *)
                  Alcotest.(check bool) "exemplar in exposition" true
                    (Astring.String.is_infix ~affix:"trace_id=\"acc.1\""
                       (Obs.Expo.prometheus ()))
              | [] -> Alcotest.fail "empty explain payload")
          | _ -> Alcotest.fail "expected an explain reply");
          (match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Error msg)) ->
              Alcotest.(check bool) "unknown id names itself" true
                (Astring.String.is_infix ~affix:"no-such-id" msg)
          | _ -> Alcotest.fail "expected an error for the unknown id");
          match Serve.Proto.read_response ic with
          | Ok (Some (Serve.Proto.Session_reply sr)) ->
              Alcotest.(check (option string)) "session op tagged"
                (Some "acc.s") sr.Serve.Proto.trace
          | _ -> Alcotest.fail "expected a session reply"))

let test_server_events_filter () =
  (* the events frame's count/level fields filter server-side — what
     `schedtool events --level/--count` rides on *)
  Obs.Event.clear ();
  let server = mk_server () in
  let inpath = Filename.temp_file "serve_evfilter_in" ".txt" in
  let outpath = Filename.temp_file "serve_evfilter_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Obs.Event.clear ();
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ inpath; outpath ])
    (fun () ->
      Obs.Event.emit "test.filter.noise" [];
      Obs.Event.emit ~level:Obs.Event.Warn "test.filter.warn1" [];
      Obs.Event.emit "test.filter.noise" [];
      Obs.Event.emit ~level:Obs.Event.Error "test.filter.err1" [];
      let oc = open_out inpath in
      Serve.Proto.write_events_request ~level:Obs.Event.Warn oc;
      Serve.Proto.write_events_request ~count:1 oc;
      close_out oc;
      let ic = open_in inpath in
      let oc = open_out outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Serve.Server.serve_channels server ic oc);
      close_out oc;
      let ic = open_in outpath in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let body () =
            match Serve.Proto.read_response ic with
            | Ok (Some (Serve.Proto.Events_reply { body })) ->
                List.filter (fun l -> l <> "")
                  (String.split_on_char '\n' body)
            | _ -> Alcotest.fail "expected an events reply"
          in
          let by_level = body () in
          Alcotest.(check bool) "warn retained" true
            (List.exists
               (Astring.String.is_infix ~affix:"test.filter.warn1")
               by_level);
          Alcotest.(check bool) "error retained" true
            (List.exists
               (Astring.String.is_infix ~affix:"test.filter.err1")
               by_level);
          Alcotest.(check bool) "info filtered out" false
            (List.exists
               (Astring.String.is_infix ~affix:"test.filter.noise")
               by_level);
          let newest = body () in
          Alcotest.(check int) "count keeps exactly one line" 1
            (List.length newest)))

(* --- Session registry ---------------------------------------------------- *)

let session_env ?(config = Serve.Session.default_config) () =
  let sessions = Serve.Session.create config in
  let cache = Serve.Cache.create ~capacity:8 in
  let handle req =
    Serve.Session.handle sessions ~cache ~default_deadline_ms:None
      ~pressure:(fun () -> false)
      req
  in
  (sessions, handle)

let expect_session name response =
  match (response : Serve.Proto.response) with
  | Serve.Proto.Session_reply r -> r
  | Serve.Proto.Error msg -> Alcotest.fail (name ^ ": " ^ msg)
  | _ -> Alcotest.fail (name ^ ": expected a session reply")

let expect_session_error name response =
  match (response : Serve.Proto.response) with
  | Serve.Proto.Error msg -> msg
  | _ -> Alcotest.fail (name ^ ": expected an error")

let test_session_lifecycle () =
  let _, handle = session_env () in
  let inst = Workloads.Gen.uniform (rng 21) ~n:9 ~m:3 ~k:3 () in
  let created =
    expect_session "create"
      (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_create inst; trace = None })
  in
  Alcotest.(check int) "fresh generation" 0 created.Serve.Proto.generation;
  Alcotest.(check int) "fresh jobs" 9 created.Serve.Proto.jobs;
  let resolve () =
    expect_session "resolve"
      (handle
         {
           Serve.Proto.sid = "a";
           op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
         })
  in
  let first = resolve () in
  Alcotest.(check (option string)) "first is full" (Some "full")
    first.Serve.Proto.mode;
  let first_solve = Option.get first.Serve.Proto.solve in
  let added =
    expect_session "add"
      (handle
         {
           Serve.Proto.sid = "a";
           op =
             Serve.Proto.S_add_jobs
               [
                 {
                   Core.Instance.nsize = 4.0;
                   nclass = 0;
                   nptimes = None;
                   neligible = None;
                 };
               ]; trace = None
         })
  in
  Alcotest.(check int) "generation bumped" 1 added.Serve.Proto.generation;
  Alcotest.(check int) "job appended" 10 added.Serve.Proto.jobs;
  let repaired = resolve () in
  Alcotest.(check (option string)) "mutated resolve repairs" (Some "repair")
    repaired.Serve.Proto.mode;
  let repaired_solve = Option.get repaired.Serve.Proto.solve in
  (* adding work can only push the makespan up *)
  Alcotest.(check bool) "monotone makespan" true
    (repaired_solve.Serve.Proto.makespan
     >= first_solve.Serve.Proto.makespan -. 1e-9);
  let again = resolve () in
  Alcotest.(check (option string)) "unchanged resolve hits the cache"
    (Some "cache") again.Serve.Proto.mode;
  let dropped =
    expect_session "drop"
      (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_drop_jobs [ 9 ]; trace = None })
  in
  Alcotest.(check int) "drop bumps generation" 2
    dropped.Serve.Proto.generation;
  Alcotest.(check int) "job removed" 9 dropped.Serve.Proto.jobs;
  let back = resolve () in
  Alcotest.(check (option string)) "post-drop resolve repairs" (Some "repair")
    back.Serve.Proto.mode;
  ignore
    (expect_session "close"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_close; trace = None }))

let test_session_errors () =
  let _, handle =
    session_env
      ~config:{ Serve.Session.default_config with max_sessions = 2 }
      ()
  in
  let inst = Workloads.Gen.identical (rng 22) ~n:5 ~m:2 ~k:2 () in
  let contains msg affix =
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg affix)
      true
      (Astring.String.is_infix ~affix msg)
  in
  (* unknown id *)
  contains
    (expect_session_error "unknown"
       (handle
          {
            Serve.Proto.sid = "ghost";
            op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
          }))
    "unknown session id";
  ignore
    (expect_session "create"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_create inst; trace = None }));
  (* duplicate create *)
  contains
    (expect_session_error "duplicate"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_create inst; trace = None }))
    "already exists";
  (* malformed mutations *)
  contains
    (expect_session_error "out of range"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_drop_jobs [ 7 ]; trace = None }))
    "out of range";
  contains
    (expect_session_error "emptying"
       (handle
          {
            Serve.Proto.sid = "a";
            op = Serve.Proto.S_drop_jobs [ 0; 1; 2; 3; 4 ]; trace = None
          }))
    "empty";
  contains
    (expect_session_error "unknown class"
       (handle
          {
            Serve.Proto.sid = "a";
            op =
              Serve.Proto.S_add_jobs
                [
                  {
                    Core.Instance.nsize = 1.0;
                    nclass = 9;
                    nptimes = None;
                    neligible = None;
                  };
                ]; trace = None
          }))
    "class";
  (* table full *)
  ignore
    (expect_session "second create"
       (handle { Serve.Proto.sid = "b"; op = Serve.Proto.S_create inst; trace = None }));
  contains
    (expect_session_error "table full"
       (handle { Serve.Proto.sid = "c"; op = Serve.Proto.S_create inst; trace = None }))
    "session table full";
  (* double close *)
  ignore
    (expect_session "close"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_close; trace = None }));
  contains
    (expect_session_error "double close"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_close; trace = None }))
    "unknown session id";
  (* the freed slot is usable again *)
  ignore
    (expect_session "create after close"
       (handle { Serve.Proto.sid = "c"; op = Serve.Proto.S_create inst; trace = None }))

let test_session_idle_eviction () =
  let sessions, handle =
    session_env
      ~config:
        { Serve.Session.default_config with idle_timeout_s = Some 0.0 }
      ()
  in
  let inst = Workloads.Gen.identical (rng 23) ~n:5 ~m:2 ~k:2 () in
  ignore
    (expect_session "create"
       (handle { Serve.Proto.sid = "a"; op = Serve.Proto.S_create inst; trace = None }));
  Alcotest.(check int) "one live session" 1 (Serve.Session.count sessions);
  Unix.sleepf 0.01;
  (* lazy expiry on access: the error names the configured timeout *)
  let msg =
    expect_session_error "expired"
      (handle
         {
           Serve.Proto.sid = "a";
           op = Serve.Proto.S_resolve { deadline_ms = None }; trace = None
         })
  in
  Alcotest.(check bool) "names idle timeout" true
    (Astring.String.is_infix ~affix:"idle timeout" msg);
  Alcotest.(check int) "slot reclaimed" 0 (Serve.Session.count sessions);
  (* bulk sweep: the watchdog-tick path *)
  ignore
    (expect_session "recreate"
       (handle { Serve.Proto.sid = "b"; op = Serve.Proto.S_create inst; trace = None }));
  Unix.sleepf 0.01;
  Alcotest.(check int) "sweep evicts" 1 (Serve.Session.evict_idle sessions);
  Alcotest.(check int) "registry empty" 0 (Serve.Session.count sessions)

(* --- incremental frame parser -------------------------------------------- *)

(* oracle: what the channel path decodes from a byte stream *)
let channel_incomings text =
  roundtrip_via_file
    (fun oc -> output_string oc text)
    (fun ic ->
      let rec go acc =
        match Serve.Proto.read_incoming ic with
        | Ok None -> List.rev acc
        | Ok (Some x) -> go (Ok x :: acc)
        | Error msg -> go (Error msg :: acc)
      in
      go [])

let channel_responses text =
  roundtrip_via_file
    (fun oc -> output_string oc text)
    (fun ic ->
      let rec go acc =
        match Serve.Proto.read_response ic with
        | Ok None -> List.rev acc
        | Ok (Some x) -> go (Ok x :: acc)
        | Error msg -> go (Error msg :: acc)
      in
      go [])

(* feed [text] to the incremental parser in the given chunks and decode
   every completed frame with [of_frame] *)
let incremental_decode of_frame chunks =
  let p = Serve.Proto.Incremental.create () in
  let out = ref [] in
  let drain () =
    let rec go () =
      match Serve.Proto.Incremental.next_frame p with
      | None -> ()
      | Some frame ->
          out := of_frame frame :: !out;
          go ()
    in
    go ()
  in
  List.iter
    (fun chunk ->
      Serve.Proto.Incremental.feed p chunk;
      drain ())
    chunks;
  Serve.Proto.Incremental.finish p;
  drain ();
  List.rev !out

let show_incoming = function
  | Error msg -> "error: " ^ msg
  | Ok (Serve.Proto.Solve req) ->
      Printf.sprintf "solve %s %s\n%s"
        (Option.value ~default:"-" req.Serve.Proto.solver)
        (match req.Serve.Proto.deadline_ms with
        | Some d -> string_of_float d
        | None -> "-")
        (Core.Instance_io.to_string req.Serve.Proto.instance)
  | Ok (Serve.Proto.Stats Serve.Proto.Prometheus) -> "stats prometheus"
  | Ok (Serve.Proto.Stats Serve.Proto.Json) -> "stats json"
  | Ok (Serve.Proto.Events { count; min_level }) ->
      Printf.sprintf "events %s %s"
        (match count with Some n -> string_of_int n | None -> "-")
        (Obs.Event.level_to_string min_level)
  | Ok Serve.Proto.Health -> "health"
  | Ok (Serve.Proto.Explain id) -> "explain " ^ id
  | Ok (Serve.Proto.Session { sid; _ }) -> "session " ^ sid
  | Ok (Serve.Proto.Profile _) -> "profile"

let show_response = function
  | Error msg -> "error: " ^ msg
  | Ok r -> Serve.Proto.response_to_string r

(* a stream that exercises every resync path: good frames, an unknown
   header, a bad body, admin frames *)
let incoming_stream () =
  let inst = Workloads.Gen.identical (rng 41) ~n:5 ~m:2 ~k:2 () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "request v1\ndeadline_ms 12.5\ninstance\n";
  Buffer.add_string buf (Core.Instance_io.to_string inst);
  Buffer.add_string buf "end\n";
  Buffer.add_string buf "banana v9\nsolver exact\nend\n";
  Buffer.add_string buf "request v1\ninstance\nnot a keyword\nend\n";
  Buffer.add_string buf "stats v1\nformat json\nend\n";
  Buffer.add_string buf "\n\nevents v1\ncount 7\nend\n";
  Buffer.add_string buf "health v1\nend\n";
  Buffer.add_string buf "explain v1\nid lg1.2\nend\n";
  Buffer.contents buf

(* payload-bearing responses, so chunk splits land inside the [payload]
   marker and inside payload bodies *)
let response_stream () =
  let buf = Buffer.create 512 in
  List.iter
    (fun r -> Buffer.add_string buf (Serve.Proto.response_to_string r))
    [
      Serve.Proto.Reply
        {
          solver = "exact";
          cache_hit = false;
          degraded = false;
          makespan = 17.5;
          elapsed_us = 42;
          assignment = [| 0; 1; 1 |];
          trace = Some "lg1.1";
        };
      Serve.Proto.Stats_reply
        {
          format = Serve.Proto.Prometheus;
          body = "# TYPE serve_requests counter\nserve_requests 3\n";
        };
      Serve.Proto.Error "boom";
      Serve.Proto.Health_reply { body = "status ok\nliveness ok\n" };
    ]
  |> ignore;
  Buffer.add_string buf "response v9\nstatus ok\nend\n";
  Buffer.contents buf

let chop_bytes s = List.init (String.length s) (fun i -> String.sub s i 1)

let test_incremental_byte_at_a_time () =
  let text = incoming_stream () in
  let oracle = List.map show_incoming (channel_incomings text) in
  let whole =
    List.map show_incoming
      (incremental_decode
         (fun f -> Serve.Proto.incoming_of_frame f)
         [ text ])
  in
  Alcotest.(check (list string)) "whole feed matches channel" oracle whole;
  let bytewise =
    List.map show_incoming
      (incremental_decode
         (fun f -> Serve.Proto.incoming_of_frame f)
         (chop_bytes text))
  in
  Alcotest.(check (list string)) "byte-at-a-time matches channel" oracle
    bytewise

let test_incremental_every_split () =
  (* every two-chunk split of a payload-bearing response stream decodes
     identically — including splits inside the [payload] marker *)
  let text = response_stream () in
  let oracle = List.map show_response (channel_responses text) in
  Alcotest.(check (list string))
    "whole feed matches channel" oracle
    (List.map show_response
       (incremental_decode
          (fun f -> Serve.Proto.response_of_frame f)
          [ text ]));
  for k = 0 to String.length text do
    let chunks =
      [ String.sub text 0 k; String.sub text k (String.length text - k) ]
    in
    let got =
      List.map show_response
        (incremental_decode
           (fun f -> Serve.Proto.response_of_frame f)
           chunks)
    in
    if got <> oracle then
      Alcotest.failf "split at byte %d diverges from the channel path" k
  done

let test_incremental_truncation () =
  let p = Serve.Proto.Incremental.create () in
  Serve.Proto.Incremental.feed p "request v1\nsolver exact";
  Alcotest.(check bool) "nothing complete yet" true
    (Serve.Proto.Incremental.next_frame p = None);
  (* stream ends mid-frame: finish delivers the dangling line, and the
     open frame is detectable for a truncated-frame error reply *)
  Serve.Proto.Incremental.finish p;
  Alcotest.(check bool) "still no frame" true
    (Serve.Proto.Incremental.next_frame p = None);
  Alcotest.(check bool) "open frame detected" true
    (Serve.Proto.Incremental.in_frame p);
  Alcotest.(check int) "all bytes consumed" 0
    (Serve.Proto.Incremental.buffered p);
  Alcotest.(check bool) "error names the terminator" true
    (Astring.String.is_infix ~affix:"end"
       Serve.Proto.Incremental.truncated_error)

(* --- generational prehash ------------------------------------------------- *)

let test_server_prehash_rotation () =
  (* prehash_cap 4 → generations of 2: the filter must retain the most
     recent half across a rotation instead of forgetting everything *)
  let server =
    Serve.Server.create
      {
        Serve.Server.default_config with
        cache_capacity = 64;
        jobs = 2;
        prehash_cap = 4;
      }
  in
  Fun.protect ~finally:(fun () -> Serve.Server.shutdown server) @@ fun () ->
  let r = rng 43 in
  let mk n = Workloads.Gen.identical (rng (100 + n)) ~n:(4 + n) ~m:2 ~k:2 () in
  let ask inst =
    match
      Serve.Server.handle_request server
        {
          Serve.Proto.solver = Some "exact";
          deadline_ms = None;
          instance = inst;
          trace = None;
        }
    with
    | Serve.Proto.Reply rep -> rep
    | Serve.Proto.Error msg -> Alcotest.fail msg
    | _ -> Alcotest.fail "unexpected admin reply"
  in
  let rot0 = counter "serve.canon.prehash_rotations" in
  let i1 = mk 1 and i2 = mk 2 and i3 = mk 3 in
  let i4 = mk 4 and i5 = mk 5 in
  ignore (ask i1);
  ignore (ask i2);
  (* current generation full: the next distinct fingerprint rotates *)
  ignore (ask i3);
  Alcotest.(check int) "one rotation" (rot0 + 1)
    (counter "serve.canon.prehash_rotations");
  (* i2 now lives in the previous generation — a relabeling still hits *)
  Alcotest.(check bool) "previous generation hits" true
    (ask (Serve.Canon.shuffle r i2)).Serve.Proto.cache_hit;
  ignore (ask i4);
  ignore (ask i5);
  Alcotest.(check int) "two rotations" (rot0 + 2)
    (counter "serve.canon.prehash_rotations");
  (* after two rotations the recent half survives, the oldest does not *)
  Alcotest.(check bool) "recent half survives" true
    (ask (Serve.Canon.shuffle r i3)).Serve.Proto.cache_hit;
  Alcotest.(check bool) "evicted fingerprint re-solves" false
    (ask (Serve.Canon.shuffle r i1)).Serve.Proto.cache_hit

(* --- shard router --------------------------------------------------------- *)

let test_router_ring () =
  let keys = List.init 2048 (fun i -> Printf.sprintf "key-%d" i) in
  let ring = Serve.Router.Ring.make 4 in
  let again = Serve.Router.Ring.make 4 in
  let counts = Array.make 4 0 in
  List.iter
    (fun k ->
      let s = Serve.Router.Ring.shard ring k in
      Alcotest.(check int) "deterministic" s (Serve.Router.Ring.shard again k);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
      counts.(s) <- counts.(s) + 1)
    keys;
  Array.iteri
    (fun i c ->
      if c * 16 < List.length keys then
        Alcotest.failf "backend %d owns only %d of %d keys" i c
          (List.length keys))
    counts;
  (* removing the last backend must not remap keys the others own: the
     surviving backends' ring points are identical in both rings *)
  let smaller = Serve.Router.Ring.make 3 in
  List.iter
    (fun k ->
      let s = Serve.Router.Ring.shard ring k in
      if s < 3 then
        Alcotest.(check int) "surviving arcs stable" s
          (Serve.Router.Ring.shard smaller k))
    keys;
  (* and the lost backend's share is roughly a quarter, not the world *)
  Alcotest.(check bool) "lost share is bounded" true
    (counts.(3) * 2 < List.length keys)

let test_router_affinity () =
  let router = Serve.Router.create ~jobs:1 [ "a"; "b"; "c"; "d" ] in
  Fun.protect ~finally:(fun () -> Serve.Router.shutdown router) @@ fun () ->
  let r = rng 17 in
  let inst = Workloads.Gen.uniform r ~n:8 ~m:3 ~k:2 () in
  let solve inst =
    Serve.Proto.Solve
      { Serve.Proto.solver = None; deadline_ms = None; instance = inst; trace = None }
  in
  let s0 = Serve.Router.shard_of_incoming router (solve inst) in
  (* relabelings share Canon.prehash, so they keep their shard (and its
     warm canonical cache) *)
  for _ = 1 to 8 do
    Alcotest.(check int) "relabeling keeps its shard" s0
      (Serve.Router.shard_of_incoming router
         (solve (Serve.Canon.shuffle r inst)))
  done;
  let sess sid =
    Serve.Proto.Session { Serve.Proto.sid; op = Serve.Proto.S_close; trace = None }
  in
  Alcotest.(check int) "session id pins its shard"
    (Serve.Router.shard_of_incoming router (sess "s-1"))
    (Serve.Router.shard_of_incoming router (sess "s-1"));
  Alcotest.(check int) "admin frames go to shard 0" 0
    (Serve.Router.shard_of_incoming router
       (Serve.Proto.Stats Serve.Proto.Prometheus))

(* --- mux event loop ------------------------------------------------------- *)

let mux_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let test_mux_tcp_pipeline () =
  (* pipelined frames on one TCP connection answer in order, through the
     same cache as the blocking transport; a malformed frame gets an
     error reply and the connection survives *)
  let server =
    Serve.Server.create
      { Serve.Server.default_config with cache_capacity = 8; jobs = 1 }
  in
  let mux = Serve.Mux.create server in
  let port =
    match Serve.Mux.add_tcp mux ~host:"127.0.0.1" ~port:0 with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> Alcotest.fail "expected a TCP address"
  in
  let runner = Domain.spawn (fun () -> Serve.Mux.run mux) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Mux.stop mux;
      Domain.join runner;
      Serve.Server.shutdown server)
  @@ fun () ->
  let inst = Workloads.Gen.identical (rng 47) ~n:6 ~m:2 ~k:2 () in
  let fd, ic, oc = mux_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* write the whole burst before reading anything *)
  for i = 1 to 3 do
    Serve.Proto.write_request oc
      {
        Serve.Proto.solver = Some "exact";
        deadline_ms = None;
        instance = inst;
        trace = Some { Serve.Proto.tid = Printf.sprintf "mx.%d" i; parent = None };
      }
  done;
  output_string oc "banana v9\nend\n";
  Serve.Proto.write_stats_request oc Serve.Proto.Prometheus;
  let replies =
    List.init 3 (fun _ ->
        match Serve.Proto.read_response ic with
        | Ok (Some (Serve.Proto.Reply r)) -> r
        | Ok (Some (Serve.Proto.Error msg)) -> Alcotest.fail msg
        | _ -> Alcotest.fail "expected a solve reply")
  in
  List.iteri
    (fun i (r : Serve.Proto.reply) ->
      Alcotest.(check (option string)) "replies arrive in request order"
        (Some (Printf.sprintf "mx.%d" (i + 1)))
        r.Serve.Proto.trace;
      Alcotest.(check bool) "cache behaves like the blocking path" (i > 0)
        r.Serve.Proto.cache_hit)
    replies;
  (match Serve.Proto.read_response ic with
  | Ok (Some (Serve.Proto.Error msg)) ->
      Alcotest.(check bool) "bad header is answered in sequence" true
        (Astring.String.is_infix ~affix:"banana" msg)
  | _ -> Alcotest.fail "expected an error reply for the bad frame");
  match Serve.Proto.read_response ic with
  | Ok (Some (Serve.Proto.Stats_reply { body; _ })) ->
      Alcotest.(check bool) "admin frame still answered inline" true
        (Astring.String.is_infix ~affix:"serve_requests" body)
  | _ -> Alcotest.fail "expected a stats reply after the error"

let test_mux_sheds_under_overload () =
  (* one pool worker, a queue of 2: a pipelined burst of 7 identical
     requests admits 1 (dispatched) + 2 (queued), sheds 4 with degraded
     replies — and every frame still gets exactly one in-order answer *)
  let server =
    Serve.Server.create
      { Serve.Server.default_config with cache_capacity = 8; jobs = 2 }
  in
  let mux =
    Serve.Mux.create
      ~config:{ Serve.Mux.default_config with max_pending = 2 }
      server
  in
  let port =
    match Serve.Mux.add_tcp mux ~host:"127.0.0.1" ~port:0 with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> Alcotest.fail "expected a TCP address"
  in
  let runner = Domain.spawn (fun () -> Serve.Mux.run mux) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Mux.stop mux;
      Domain.join runner;
      Serve.Server.shutdown server)
  @@ fun () ->
  (* big enough that the exact solve outlives the burst's arrival *)
  let inst = Workloads.Gen.uniform (rng 53) ~n:12 ~m:4 ~k:3 () in
  let fd, ic, oc = mux_connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let n = 7 in
  for i = 1 to n do
    Serve.Proto.write_request oc
      {
        Serve.Proto.solver = Some "exact";
        deadline_ms = None;
        instance = inst;
        trace = Some { Serve.Proto.tid = Printf.sprintf "ov.%d" i; parent = None };
      }
  done;
  let degraded = ref 0 and served = ref 0 in
  for i = 1 to n do
    match Serve.Proto.read_response ic with
    | Ok (Some (Serve.Proto.Reply r)) ->
        Alcotest.(check (option string)) "in order"
          (Some (Printf.sprintf "ov.%d" i))
          r.Serve.Proto.trace;
        if r.Serve.Proto.degraded then incr degraded else incr served
    | Ok (Some (Serve.Proto.Error msg)) -> Alcotest.fail msg
    | _ -> Alcotest.fail "expected a solve reply"
  done;
  Alcotest.(check int) "every frame answered" n (!degraded + !served);
  (* the queue meter feeds the health lattice, which halves capacity as
     the queue fills — so 2 or 3 frames are admitted (head-of-line plus
     one or two queued), and at least 4 of the 7 are shed degraded *)
  Alcotest.(check bool) "overload sheds degraded replies" true (!degraded >= 4);
  Alcotest.(check bool) "admitted frames get full answers" true (!served >= 2)

let () =
  Alcotest.run "serve"
    [
      ( "canon",
        [
          Alcotest.test_case "permutation invariance" `Quick
            test_canon_permutation_invariance;
          Alcotest.test_case "idempotent" `Quick test_canon_is_idempotent;
          Alcotest.test_case "schedule mapping" `Quick
            test_canon_schedule_mapping;
          Alcotest.test_case "prehash collides on permutations" `Quick
            test_canon_prehash_collides_on_permutations;
          Alcotest.test_case "prehash store roundtrip" `Quick
            test_canon_prehash_roundtrip_store;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "eviction event and size gauge" `Quick
            test_cache_evict_event;
          Alcotest.test_case "overwrite" `Quick test_cache_overwrite;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "exact on small" `Quick test_dispatch_exact_small;
          Alcotest.test_case "deadline degrades" `Quick
            test_dispatch_deadline_degrades;
          Alcotest.test_case "unknown solver" `Quick
            test_dispatch_unknown_solver;
          Alcotest.test_case "lpt inapplicable" `Quick
            test_dispatch_lpt_inapplicable;
          Alcotest.test_case "pressure sheds heavy tier" `Quick
            test_dispatch_pressure_sheds;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick
            test_proto_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_proto_response_roundtrip;
          Alcotest.test_case "stats frame roundtrip" `Quick
            test_proto_stats_roundtrip;
          Alcotest.test_case "events frame roundtrip" `Quick
            test_proto_events_roundtrip;
          Alcotest.test_case "health frame roundtrip" `Quick
            test_proto_health_roundtrip;
          Alcotest.test_case "malformed resync" `Quick
            test_proto_malformed_resync;
          Alcotest.test_case "trace roundtrip" `Quick
            test_proto_trace_roundtrip;
          Alcotest.test_case "explain roundtrip" `Quick
            test_proto_explain_roundtrip;
          Alcotest.test_case "session frame roundtrip" `Quick
            test_proto_session_roundtrip;
          Alcotest.test_case "session malformed resync" `Quick
            test_proto_session_resync;
          Alcotest.test_case "incremental byte-at-a-time" `Quick
            test_incremental_byte_at_a_time;
          Alcotest.test_case "incremental every split point" `Quick
            test_incremental_every_split;
          Alcotest.test_case "incremental truncation" `Quick
            test_incremental_truncation;
        ] );
      ( "server",
        [
          Alcotest.test_case "cache roundtrip" `Quick
            test_server_cache_roundtrip;
          Alcotest.test_case "stats frame" `Quick test_server_stats_frame;
          Alcotest.test_case "events frame" `Quick test_server_events_frame;
          Alcotest.test_case "health frame" `Quick test_server_health_frame;
          Alcotest.test_case "slow-request dump" `Quick test_server_slow_dump;
          Alcotest.test_case "socket session" `Quick test_server_socket_session;
          Alcotest.test_case "trace adoption" `Quick
            test_server_trace_adoption;
          Alcotest.test_case "explain acceptance" `Quick
            test_server_explain_acceptance;
          Alcotest.test_case "events filter" `Quick test_server_events_filter;
          Alcotest.test_case "generational prehash rotation" `Quick
            test_server_prehash_rotation;
        ] );
      ( "mux",
        [
          Alcotest.test_case "tcp pipelining" `Quick test_mux_tcp_pipeline;
          Alcotest.test_case "overload shedding" `Quick
            test_mux_sheds_under_overload;
        ] );
      ( "router",
        [
          Alcotest.test_case "consistent-hash ring" `Quick test_router_ring;
          Alcotest.test_case "shard affinity" `Quick test_router_affinity;
        ] );
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "errors" `Quick test_session_errors;
          Alcotest.test_case "idle eviction" `Quick
            test_session_idle_eviction;
        ] );
    ]
