(* Tests for the RNG and the instance generators. *)

module R = Workloads.Rng
module G = Workloads.Gen

(* --- RNG ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = R.create 42 and b = R.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.int64 a) (R.int64 b)
  done

let test_rng_seeds_differ () =
  let a = R.create 1 and b = R.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if R.int64 a = R.int64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_rng_int_range () =
  let rng = R.create 7 in
  for _ = 1 to 10_000 do
    let v = R.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.(check bool) "bound validated" true
    (try
       ignore (R.int rng 0);
       false
     with Invalid_argument _ -> true)

let test_rng_int_covers_range () =
  let rng = R.create 9 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(R.int rng 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = R.create 13 in
  for _ = 1 to 10_000 do
    let v = R.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_float_mean () =
  let rng = R.create 17 in
  let sum = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    sum := !sum +. R.float rng
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_split_independent () =
  let rng = R.create 21 in
  let child = R.split rng in
  let same = ref 0 in
  for _ = 1 to 50 do
    if R.int64 rng = R.int64 child then incr same
  done;
  Alcotest.(check int) "independent streams" 0 !same

let test_rng_split_n_no_collisions () =
  (* fuzz workers each get one split child; if two children (or a child
     and the parent) ever produced overlapping streams, differential
     results would correlate silently. Hash a prefix of each stream and
     demand all-distinct. *)
  let rng = R.create 31 in
  let children = R.split_n rng 64 in
  Alcotest.(check int) "count" 64 (Array.length children);
  let fingerprint r =
    let h = ref 0L in
    for _ = 1 to 16 do
      h := Int64.add (Int64.mul !h 1000003L) (R.int64 r)
    done;
    !h
  in
  let prints = Array.map fingerprint children in
  let parent_print = fingerprint rng in
  let tbl = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace tbl p ()) prints;
  Alcotest.(check int) "children pairwise distinct" 64 (Hashtbl.length tbl);
  Alcotest.(check bool) "parent distinct from children" false
    (Hashtbl.mem tbl parent_print);
  (* deterministic and in index order: the same parent seed reproduces
     the same children *)
  let again = R.split_n (R.create 31) 64 in
  Array.iteri
    (fun i c ->
      Alcotest.(check int64) "reproducible" (fingerprint c) prints.(i))
    again;
  Alcotest.(check bool) "negative count rejected" true
    (try
       ignore (R.split_n rng (-1));
       false
     with Invalid_argument _ -> true)

let test_rng_permutation () =
  let rng = R.create 23 in
  let p = R.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 20 Fun.id)

let test_rng_shuffle_uniformish () =
  (* position of element 0 after shuffling should hit every slot *)
  let seen = Array.make 5 false in
  let rng = R.create 29 in
  for _ = 1 to 1000 do
    let a = [| 0; 1; 2; 3; 4 |] in
    R.shuffle rng a;
    let idx = ref 0 in
    Array.iteri (fun i v -> if v = 0 then idx := i) a;
    seen.(!idx) <- true
  done;
  Alcotest.(check bool) "all positions reached" true (Array.for_all Fun.id seen)

(* --- Generators ----------------------------------------------------------- *)

let check_classes_nonempty t =
  for k = 0 to Core.Instance.num_classes t - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "class %d nonempty" k)
      true
      (Core.Instance.jobs_of_class t k <> [])
  done

let check_all_jobs_eligible t =
  for j = 0 to Core.Instance.num_jobs t - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "job %d eligible somewhere" j)
      true
      (Core.Instance.eligible_machines t j <> [])
  done

let test_gen_identical () =
  let t = G.identical (R.create 1) ~n:10 ~m:3 ~k:4 () in
  Alcotest.(check int) "jobs" 10 (Core.Instance.num_jobs t);
  Alcotest.(check int) "machines" 3 (Core.Instance.num_machines t);
  check_classes_nonempty t;
  check_all_jobs_eligible t

let test_gen_uniform_speeds () =
  let t = G.uniform (R.create 2) ~n:8 ~m:5 ~k:2 ~speed_range:(1.0, 4.0) () in
  match t.Core.Instance.env with
  | Core.Instance.Uniform speeds ->
      let mn = Array.fold_left Float.min infinity speeds in
      Alcotest.(check (float 1e-9)) "slowest normalized" 1.0 mn;
      Array.iter
        (fun v ->
          Alcotest.(check bool) "within range" true (v >= 1.0 && v <= 16.0))
        speeds
  | _ -> Alcotest.fail "expected uniform env"

let test_gen_unrelated_eligibility () =
  let t =
    G.unrelated (R.create 3) ~n:12 ~m:4 ~k:3 ~ineligible_prob:0.5 ()
  in
  check_all_jobs_eligible t;
  check_classes_nonempty t

let test_gen_unrelated_integral_times () =
  let t = G.unrelated (R.create 4) ~n:6 ~m:3 ~k:2 () in
  for i = 0 to 2 do
    for j = 0 to 5 do
      let p = Core.Instance.ptime t i j in
      if p < infinity then
        Alcotest.(check (float 1e-9)) "integral" (Float.round p) p
    done
  done

let test_gen_restricted_class_uniform () =
  let t = G.restricted_class_uniform (R.create 5) ~n:10 ~m:4 ~k:3 () in
  Alcotest.(check bool) "class uniform" true
    (Core.Instance.restrict_class_uniform t);
  check_all_jobs_eligible t

let test_gen_class_uniform_ptimes () =
  let t = G.class_uniform_ptimes (R.create 6) ~n:10 ~m:4 ~k:3 () in
  Alcotest.(check bool) "class-uniform ptimes" true
    (Core.Instance.class_uniform_ptimes t);
  check_all_jobs_eligible t

let test_gen_production_trace () =
  let t =
    G.production_trace (R.create 7) ~batches:8 ~jobs_per_batch:3 ~m:3 ~k:4 ()
  in
  Alcotest.(check int) "jobs" 24 (Core.Instance.num_jobs t);
  check_classes_nonempty t;
  check_all_jobs_eligible t;
  (* batch structure: jobs within a run share a class *)
  for b = 0 to 7 do
    let k0 = t.Core.Instance.job_class.(b * 3) in
    Alcotest.(check int) "run shares class" k0 t.Core.Instance.job_class.((b * 3) + 2)
  done;
  Alcotest.(check bool) "trace params validated" true
    (try
       ignore (G.production_trace (R.create 1) ~batches:2 ~jobs_per_batch:1 ~m:1 ~k:5 ());
       false
     with Invalid_argument _ -> true)

let test_gen_validation () =
  let bad name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  bad "n < k" (fun () -> G.identical (R.create 1) ~n:2 ~m:1 ~k:3 ());
  bad "zero machines" (fun () -> G.identical (R.create 1) ~n:2 ~m:0 ~k:1 ());
  bad "bad ineligible prob" (fun () ->
      G.unrelated (R.create 1) ~n:3 ~m:2 ~k:1 ~ineligible_prob:1.0 ());
  bad "bad min_eligible" (fun () ->
      G.restricted_class_uniform (R.create 1) ~n:3 ~m:2 ~k:1 ~min_eligible:5 ())

let test_gen_deterministic () =
  let t1 = G.uniform (R.create 77) ~n:6 ~m:3 ~k:2 () in
  let t2 = G.uniform (R.create 77) ~n:6 ~m:3 ~k:2 () in
  Alcotest.(check string) "same instance"
    (Core.Instance_io.to_string t1)
    (Core.Instance_io.to_string t2)

(* property: generated instances always pass Instance validation (they are
   built through the smart constructors) and have sane bounds *)
let gen_params =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* n = int_range 3 20 in
    let* m = int_range 1 6 in
    let* k = int_range 1 3 in
    return (seed, n, m, k))

let prop_bounds_sane =
  QCheck.Test.make ~name:"bounds sane on generated instances" ~count:100
    (QCheck.make gen_params) (fun (seed, n, m, k) ->
      let rng = R.create seed in
      let t =
        match seed mod 4 with
        | 0 -> G.identical rng ~n ~m ~k ()
        | 1 -> G.uniform rng ~n ~m ~k ()
        | 2 -> G.unrelated rng ~n ~m ~k ()
        | _ -> G.restricted_class_uniform rng ~n ~m ~k ()
      in
      let lb = Core.Bounds.lower_bound t in
      let ub = Core.Bounds.naive_upper_bound t in
      lb >= 0.0 && lb <= ub +. 1e-9 && ub < infinity)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "split_n collisions" `Quick
            test_rng_split_n_no_collisions;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_uniformish;
        ] );
      ( "generators",
        [
          Alcotest.test_case "identical" `Quick test_gen_identical;
          Alcotest.test_case "uniform speeds" `Quick test_gen_uniform_speeds;
          Alcotest.test_case "unrelated eligibility" `Quick
            test_gen_unrelated_eligibility;
          Alcotest.test_case "integral times" `Quick
            test_gen_unrelated_integral_times;
          Alcotest.test_case "restricted class uniform" `Quick
            test_gen_restricted_class_uniform;
          Alcotest.test_case "class uniform ptimes" `Quick
            test_gen_class_uniform_ptimes;
          Alcotest.test_case "production trace" `Quick
            test_gen_production_trace;
          Alcotest.test_case "validation" `Quick test_gen_validation;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_bounds_sane ] );
    ]
